"""Tests for the wavefront value grid."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError
from repro.core.grid import WavefrontGrid


class TestWavefrontGrid:
    def test_shapes_and_payload(self):
        grid = WavefrontGrid(dim=8, dsize=3)
        assert grid.values.shape == (8, 8)
        assert grid.payload.shape == (8, 8, 3)
        assert grid.meta.shape == (8, 8, 2)

    def test_no_payload_when_dsize_zero(self):
        assert WavefrontGrid(dim=4, dsize=0).payload is None

    def test_diagonal_roundtrip(self):
        grid = WavefrontGrid(dim=5)
        vals = np.arange(4, dtype=float)
        grid.set_diagonal(3, vals)
        assert np.array_equal(grid.get_diagonal(3), vals)

    def test_set_diagonal_wrong_length_rejected(self):
        grid = WavefrontGrid(dim=5)
        with pytest.raises(InvalidParameterError):
            grid.set_diagonal(3, np.zeros(5))

    def test_segment_roundtrip(self):
        grid = WavefrontGrid(dim=6)
        grid.set_diagonal(5, np.arange(6, dtype=float))
        seg = grid.get_diagonal_segment(5, 2, 5)
        assert np.array_equal(seg, [2.0, 3.0, 4.0])
        grid.set_diagonal_segment(5, 0, np.array([9.0, 8.0]))
        assert grid.get_diagonal(5)[0] == 9.0 and grid.get_diagonal(5)[1] == 8.0

    def test_segment_out_of_range_rejected(self):
        grid = WavefrontGrid(dim=4)
        with pytest.raises(InvalidParameterError):
            grid.set_diagonal_segment(0, 0, np.zeros(2))

    def test_neighbours_boundary(self):
        grid = WavefrontGrid(dim=4)
        grid.values[:] = 7.0
        west, north, nw = grid.neighbours(np.array([0]), np.array([0]), boundary=-1.0)
        assert west[0] == -1.0 and north[0] == -1.0 and nw[0] == -1.0

    def test_neighbours_interior(self):
        grid = WavefrontGrid(dim=4)
        grid.values[1, 1] = 5.0
        grid.values[1, 2] = 6.0
        grid.values[2, 1] = 7.0
        west, north, nw = grid.neighbours(np.array([2]), np.array([2]))
        assert (west[0], north[0], nw[0]) == (7.0, 6.0, 5.0)

    def test_copy_is_deep(self):
        grid = WavefrontGrid(dim=4, dsize=1)
        clone = grid.copy()
        clone.values[0, 0] = 42.0
        assert grid.values[0, 0] == 0.0

    def test_allclose(self):
        a = WavefrontGrid(dim=4)
        b = WavefrontGrid(dim=4)
        assert a.allclose(b)
        b.values[2, 2] = 1e-3
        assert not a.allclose(b)
        assert not a.allclose(WavefrontGrid(dim=5))

    def test_nbytes_positive_and_grows_with_dsize(self):
        small = WavefrontGrid(dim=8, dsize=0).nbytes()
        large = WavefrontGrid(dim=8, dsize=5).nbytes()
        assert 0 < small < large

    def test_invalid_dim_rejected(self):
        with pytest.raises(InvalidParameterError):
            WavefrontGrid(dim=1)
        with pytest.raises(InvalidParameterError):
            WavefrontGrid(dim=8, dsize=-2)
