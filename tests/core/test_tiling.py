"""Tests for CPU tiling and the tile wavefront."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError
from repro.core.tiling import TileDecomposition, triangular_tile_waves


class TestTileDecomposition:
    def test_tile_counts_exact_division(self):
        decomp = TileDecomposition(20, 20, 4)
        assert decomp.tile_rows == 5 and decomp.tile_cols == 5
        assert decomp.n_tiles == 25

    def test_tile_counts_ragged(self):
        decomp = TileDecomposition(10, 10, 3)
        assert decomp.tile_rows == 4
        last = decomp.tile_at(3, 3)
        assert last.n_rows == 1 and last.n_cols == 1

    def test_tiles_cover_grid_exactly(self):
        decomp = TileDecomposition(13, 9, 4)
        covered = np.zeros((13, 9), dtype=int)
        for tile in decomp.all_tiles():
            covered[tile.row_start:tile.row_stop, tile.col_start:tile.col_stop] += 1
        assert np.all(covered == 1)

    def test_schedule_respects_dependencies(self):
        decomp = TileDecomposition(12, 12, 4)
        seen = set()
        for wave in decomp.schedule():
            for tile in wave:
                # West / north / north-west tile neighbours must already be done.
                for dep in [(tile.tile_row - 1, tile.tile_col), (tile.tile_row, tile.tile_col - 1), (tile.tile_row - 1, tile.tile_col - 1)]:
                    if dep[0] >= 0 and dep[1] >= 0:
                        assert dep in seen
            for tile in wave:
                seen.add((tile.tile_row, tile.tile_col))
        assert len(seen) == decomp.n_tiles

    def test_tiles_per_diagonal_matches_schedule(self):
        decomp = TileDecomposition(17, 11, 3)
        counts = decomp.tiles_per_diagonal()
        schedule = decomp.schedule()
        assert len(schedule) == decomp.n_tile_diagonals
        for td, wave in enumerate(schedule):
            assert counts[td] == len(wave)

    def test_wavefront_waves_single_worker(self):
        decomp = TileDecomposition(8, 8, 4)
        # With one worker each tile is its own round.
        assert decomp.wavefront_waves(1) == decomp.n_tiles

    def test_wavefront_waves_many_workers_is_critical_path(self):
        decomp = TileDecomposition(8, 8, 4)
        # With unlimited workers the critical path is the number of tile diagonals.
        assert decomp.wavefront_waves(100) == decomp.n_tile_diagonals

    def test_parallel_efficiency_bounds(self):
        decomp = TileDecomposition(40, 40, 4)
        eff1 = decomp.parallel_efficiency(1)
        eff8 = decomp.parallel_efficiency(8)
        assert eff1 == pytest.approx(1.0)
        assert 0.0 < eff8 <= 1.0

    def test_tile_lookup_out_of_range(self):
        decomp = TileDecomposition(8, 8, 4)
        with pytest.raises(InvalidParameterError):
            decomp.tile_at(5, 0)

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            TileDecomposition(0, 4, 1)
        with pytest.raises(InvalidParameterError):
            TileDecomposition(4, 4, 0)
        with pytest.raises(InvalidParameterError):
            TileDecomposition(4, 4, 2).wavefront_waves(0)


class TestTriangularTileWaves:
    def test_zero_diagonals_is_zero(self):
        assert triangular_tile_waves(100, 0, 4, 8) == 0

    def test_full_grid_matches_decomposition(self):
        dim, tile, workers = 24, 4, 3
        expected = TileDecomposition(dim, dim, tile).wavefront_waves(workers)
        assert triangular_tile_waves(dim, 2 * dim - 1, tile, workers) == expected

    def test_monotone_in_region_size(self):
        waves = [triangular_tile_waves(64, k, 4, 4) for k in (8, 16, 32, 64, 127)]
        assert all(a <= b for a, b in zip(waves, waves[1:]))

    def test_more_workers_never_slower(self):
        for workers in (1, 2, 4, 8):
            assert triangular_tile_waves(32, 20, 4, workers) >= triangular_tile_waves(
                32, 20, 4, workers + 1
            )

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            triangular_tile_waves(0, 3, 1, 1)
        with pytest.raises(InvalidParameterError):
            triangular_tile_waves(8, 3, 0, 1)
        with pytest.raises(InvalidParameterError):
            triangular_tile_waves(8, 3, 1, 0)
