"""Tests for multi-GPU diagonal partitioning and halo bookkeeping."""

import pytest

from repro.core.exceptions import PartitionError
from repro.core.partition import (
    count_halo_swaps,
    halo_swap_nbytes,
    partition_diagonal,
    redundant_cells_for_band,
    swap_interval,
)


class TestPartitionDiagonal:
    def test_single_gpu_owns_everything(self):
        parts = partition_diagonal(17, 1, 0)
        assert len(parts) == 1
        assert parts[0].own_cells == 17
        assert parts[0].redundant_cells == 0

    def test_two_gpus_split_evenly(self):
        parts = partition_diagonal(10, 2, 0)
        assert [p.own_cells for p in parts] == [5, 5]
        assert parts[0].own_stop == parts[1].own_start

    def test_odd_split_gives_extra_to_first(self):
        parts = partition_diagonal(11, 2, 0)
        assert [p.own_cells for p in parts] == [6, 5]

    def test_own_regions_cover_diagonal_without_overlap(self):
        for length in (1, 2, 5, 9, 100):
            for gpus in (1, 2):
                parts = partition_diagonal(length, gpus, 3)
                covered = []
                for p in parts:
                    covered.extend(range(p.own_start, p.own_stop))
                assert covered == list(range(length))

    def test_halo_adds_redundant_cells_only_at_internal_boundaries(self):
        parts = partition_diagonal(20, 2, 3)
        assert parts[0].halo_lo == 0 and parts[0].halo_hi == 3
        assert parts[1].halo_lo == 3 and parts[1].halo_hi == 0
        assert parts[0].compute_stop == parts[0].own_stop + 3

    def test_halo_clipped_to_diagonal(self):
        parts = partition_diagonal(4, 2, 100)
        assert parts[0].compute_stop <= 4
        assert parts[1].compute_start >= 0

    def test_invalid_arguments(self):
        with pytest.raises(PartitionError):
            partition_diagonal(0, 1, 0)
        with pytest.raises(PartitionError):
            partition_diagonal(5, 0, 0)
        with pytest.raises(PartitionError):
            partition_diagonal(5, 2, -1)


class TestHaloBookkeeping:
    def test_swap_interval_minimum_one(self):
        assert swap_interval(0) == 1
        assert swap_interval(4) == 4
        with pytest.raises(PartitionError):
            swap_interval(-1)

    def test_count_halo_swaps_every_step_for_zero_halo(self):
        assert count_halo_swaps(10, 0) == 9

    def test_count_halo_swaps_fewer_with_larger_halo(self):
        swaps = [count_halo_swaps(100, h) for h in (0, 1, 5, 10, 50)]
        assert all(a >= b for a, b in zip(swaps, swaps[1:]))
        assert count_halo_swaps(1, 0) == 0

    def test_redundant_cells_grow_with_halo(self):
        lengths = [10, 11, 12, 11, 10]
        r0 = redundant_cells_for_band(lengths, 2, 0)
        r3 = redundant_cells_for_band(lengths, 2, 3)
        assert r0 == 0
        assert r3 > r0
        assert redundant_cells_for_band(lengths, 1, 3) == 0

    def test_halo_swap_nbytes(self):
        assert halo_swap_nbytes(100, 1, 5, 16) == 0
        assert halo_swap_nbytes(100, 2, 5, 16) == 2 * 6 * 16
        # Clipped by the diagonal length.
        assert halo_swap_nbytes(3, 2, 10, 8) == 2 * 3 * 8
