"""Tests for the Session facade (plan/execute separation, batched serving).

Covers the acceptance contract of the session API:

* plan/execute round-trips are equivalent to the historical hand-wired
  ``AutoTuner`` + ``HybridExecutor`` path on every registered application;
* ``solve_many`` serves >= 10 repeated requests from one tuned-plan
  resolution and one persistent worker pool, with results identical to
  per-call solving;
* every session cache is LRU-bounded by ``cache_size``;
* plans serialise to JSON and replay in a fresh session;
* failures surface as ``repro.core.exceptions`` subclasses.
"""

import numpy as np
import pytest

from repro import Session, autotune_and_run
from repro.apps.lcs import LCSApp
from repro.apps.registry import available_applications
from repro.autotuner.measured import MeasuredTuner, ProfileConfig, profile_host
from repro.autotuner.protocol import PlanDecision, Tuner
from repro.autotuner.tuner import AutoTuner
from repro.core.exceptions import (
    ArtifactError,
    ReproError,
    UnknownApplicationError,
    UnknownSystemError,
    UsageError,
)
from repro.core.params import TunableParams
from repro.facade.plan import ResolvedPlan, load_plan, save_plan
from repro.facade.tuners import make_tuner
from repro.hardware.system import detect_local_system
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor

SMALL_DIM = 24


@pytest.fixture(scope="module")
def i3_session(quick_tuner_i3, i3):
    """A session over the shared tiny-space tuner (no retraining per test)."""
    with Session(system=i3, tuner=quick_tuner_i3) as session:
        yield session


class _CountingMPTuner(Tuner):
    """Stub strategy pinning the multicore backend; counts resolutions."""

    kind = "stub-mp"

    def __init__(self, workers: int = 2, tile: int = 8) -> None:
        self.workers = workers
        self.tile = tile
        self.calls = 0

    def resolve(self, app, params):
        """Always answer mp-parallel (forcing a real worker pool)."""
        self.calls += 1
        return PlanDecision(
            backend="mp-parallel",
            tunables=TunableParams(cpu_tile=self.tile),
            workers=self.workers,
        )


class TestPlanResolution:
    def test_plan_is_inspectable_and_cached(self, i3_session):
        plan = i3_session.plan("lcs", SMALL_DIM)
        assert plan.app == "lcs" and plan.dim == SMALL_DIM
        assert plan.system == "i3-540" and plan.tuner == "learned"
        assert plan.backend == "hybrid" and plan.expected_s > 0
        assert "lcs" in plan.describe()
        again = i3_session.plan("lcs", SMALL_DIM)
        assert again is plan  # LRU hit, not re-resolved

    def test_manual_backend_bypasses_tuner(self, i3):
        with Session(system=i3) as session:
            plan = session.plan(
                "lcs", SMALL_DIM, backend="vectorized", tunables=TunableParams()
            )
            assert plan.tuner == "manual"
            assert not session.tuner_ready  # the tuner was never built
            result = session.run(plan)
            assert result.grid is not None

    def test_session_worker_override_wins(self, i3):
        with Session(system=i3, workers=1) as session:
            plan = session.plan(
                "lcs", SMALL_DIM, backend="mp-parallel", tunables=TunableParams(cpu_tile=8)
            )
            assert plan.workers == 1

    def test_plan_accepts_application_instance(self, i3_session):
        plan = i3_session.plan(LCSApp(dim=SMALL_DIM))
        assert plan.app == "lcs" and plan.dim == SMALL_DIM

    def test_plan_accepts_problem(self, i3_session, small_synthetic):
        plan = i3_session.plan(small_synthetic)
        result = i3_session.run(plan)
        reference = SerialExecutor(i3_session.system).execute(small_synthetic)
        assert result.matches(reference)

    def test_custom_instance_never_aliases_registry_cache(self, i3_session):
        """A differently-configured instance must not hit (or poison) the
        cache slots of the registry default sharing its name."""
        registry_result = i3_session.solve("lcs", SMALL_DIM)
        custom = LCSApp(dim=SMALL_DIM, seed=99, similarity=0.1)
        custom_result = i3_session.solve(custom)
        # Different sequences -> different grids; and the custom solve must
        # match a serial run of the *custom* problem, not the registry one.
        custom_problem = custom.problem(SMALL_DIM)
        serial = SerialExecutor(i3_session.system).execute(custom_problem)
        assert custom_result.matches(serial)
        assert not np.array_equal(
            custom_result.grid.values, registry_result.grid.values
        )
        # The registry slot is untouched: solving by name again still
        # answers for the registry default.
        again = i3_session.solve("lcs", SMALL_DIM)
        assert np.array_equal(again.grid.values, registry_result.grid.values)


class TestEquivalenceWithLegacyPath:
    @pytest.mark.parametrize("app_name", available_applications())
    def test_solve_matches_hand_wired_tuner_and_executor(
        self, app_name, i3_session, quick_tuner_i3, i3
    ):
        """The session answer == the pre-session AutoTuner + HybridExecutor wiring."""
        from repro.apps.registry import get_application

        problem = get_application(app_name, dim=SMALL_DIM).problem(SMALL_DIM)
        tunables, engine = quick_tuner_i3.tune_with_engine(problem)
        legacy = HybridExecutor(
            i3, quick_tuner_i3.constants, cpu_engine=engine
        ).execute(problem, tunables, mode="functional")

        result = i3_session.solve(app_name, SMALL_DIM)
        assert result.matches(legacy)
        assert result.tunables == legacy.tunables

    def test_simulate_mode_rtimes_match_legacy(self, i3_session, quick_tuner_i3, i3):
        from repro.apps.registry import get_application

        problem = get_application("synthetic", dim=64).problem(64)
        tunables, engine = quick_tuner_i3.tune_with_engine(problem)
        legacy = HybridExecutor(
            i3, quick_tuner_i3.constants, cpu_engine=engine
        ).execute(problem, tunables, mode="simulate")
        result = i3_session.solve("synthetic", 64, mode="simulate")
        assert result.rtime == pytest.approx(legacy.rtime)

    def test_deprecated_shim_goes_through_session(self, i3, quick_tuner_i3):
        from repro.apps.nash import NashEquilibriumApp

        app = NashEquilibriumApp(dim=20)
        with pytest.warns(DeprecationWarning):
            result = autotune_and_run(app, i3, mode="functional", tuner=quick_tuner_i3)
        serial = SerialExecutor(i3).execute(app.problem())
        assert result.matches(serial)


class TestSolveManyServing:
    def test_ten_requests_one_plan_one_pool_identical_results(self, i7_2600k):
        """The acceptance scenario: >= 10 repeated requests are served from
        one tuned-plan resolution and one persistent worker pool, with
        results identical to solving each request in a fresh session."""
        tuner = _CountingMPTuner(workers=2)
        requests = [("lcs", SMALL_DIM)] * 12
        with Session(system=i7_2600k, tuner=tuner) as session:
            results = session.solve_many(requests)
            info = session.cache_info()
        assert len(results) == 12
        assert tuner.calls == 1  # one tuned-plan resolution for the stream
        assert info["builds"]["pools_built"] == 1  # one worker pool ...
        assert info["builds"]["pool_requests"] == 12  # ... serving every request
        assert all(r.stats["mode"] == "process-pool" for r in results)
        assert all(r.stats["workers"] == 2 for r in results)

        # Identical to per-call solving (fresh session per request).
        with Session(system=i7_2600k, tuner=_CountingMPTuner(workers=2)) as fresh:
            per_call = fresh.solve("lcs", SMALL_DIM)
        for r in results:
            assert r.matches(per_call)
            assert np.array_equal(r.grid.values, per_call.grid.values)

    def test_mixed_request_forms(self, i3_session):
        results = i3_session.solve_many(
            [
                "lcs",
                ("lcs", SMALL_DIM),
                {"app": "lcs", "dim": SMALL_DIM},
                i3_session.plan("lcs", SMALL_DIM),
            ]
        )
        assert len(results) == 4
        assert results[1].matches(results[2]) and results[1].matches(results[3])

    def test_hybrid_mp_engine_reuses_one_pool(self, i7_2600k):
        with Session(system=i7_2600k) as session:
            plan = session.plan(
                "lcs",
                SMALL_DIM,
                backend="hybrid",
                engine="mp",
                workers=2,
                tunables=TunableParams(cpu_tile=8),
            )
            results = [session.run(plan) for _ in range(3)]
            builds = session.cache_info()["builds"]
        assert builds["pools_built"] == 1
        reference = SerialExecutor(i7_2600k).execute(LCSApp(dim=SMALL_DIM).problem())
        for r in results:
            assert r.matches(reference)


class TestThreadSafety:
    def test_threads_hammering_one_session_match_sequential(self, i3_session):
        """N threads sharing one session get grids bit-identical to
        sequential solving — the serving layer's core assumption about
        session thread-safety (plan lock + run lock + locked LRUs)."""
        import threading

        mix = [("lcs", SMALL_DIM), ("edit-distance", 20), ("matrix-chain", 16)]
        sequential = {key: i3_session.solve(*key) for key in mix}
        failures = []

        def hammer(thread_id):
            for i in range(5):
                app, dim = mix[(thread_id + i) % len(mix)]
                result = i3_session.solve(app, dim)
                if not np.array_equal(
                    result.grid.values, sequential[(app, dim)].grid.values
                ):
                    failures.append((app, dim))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_lazy_tuner_is_built_once_under_contention(self, i3, tiny_space):
        """Concurrent first touches of the lazy tuner train exactly one."""
        import threading

        with Session(system=i3, tuner="learned", space=tiny_space) as session:
            barrier = threading.Barrier(4)
            tuners = []

            def touch():
                barrier.wait()
                tuners.append(session.tuner)

            threads = [threading.Thread(target=touch) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(t is tuners[0] for t in tuners)


class TestBoundedCaches:
    def test_plan_and_problem_caches_respect_cache_size(self, i3, quick_tuner_i3):
        with Session(system=i3, tuner=quick_tuner_i3, cache_size=2) as session:
            for dim in (16, 24, 32, 40):
                session.plan("lcs", dim)
            info = session.cache_info()
        assert info["plans"]["size"] <= 2
        assert info["problems"]["size"] <= 2
        assert info["plans"]["evictions"] > 0

    def test_measured_plan_cache_is_bounded(self, tmp_path):
        system = detect_local_system()
        config = ProfileConfig(
            apps=("lcs",),
            dims=(16, 24),
            backends=("serial", "vectorized"),
            tiles=(8,),
            repeats=1,
            budget_s=60.0,
        )
        profile = profile_host(system, config)
        tuner = MeasuredTuner.train(profile)
        bounded = MeasuredTuner(profile, tuner.model, plan_cache_size=2)
        for dim in (16, 20, 24, 28, 32):
            bounded.tune("lcs", dim)
        assert bounded.cache_info()["plans"] <= 2
        assert bounded.cache_info()["evictions"] > 0

    def test_pool_eviction_closes_pools(self, i7_2600k):
        with Session(system=i7_2600k, max_pools=1) as session:
            p1 = session.plan(
                "lcs", 16, backend="mp-parallel", workers=2, tunables=TunableParams(cpu_tile=4)
            )
            p2 = session.plan(
                "lcs", 24, backend="mp-parallel", workers=2, tunables=TunableParams(cpu_tile=4)
            )
            session.run(p1)
            session.run(p2)  # evicts (and closes) the dim-16 pool
            session.run(p1)  # rebuilt
            info = session.cache_info()
        assert info["builds"]["pools_built"] == 3
        assert info["pools"]["evictions"] >= 2


class TestPlanSerialization:
    def test_json_round_trip_and_replay(self, i3_session, tmp_path, i3, quick_tuner_i3):
        plan = i3_session.plan("lcs", SMALL_DIM)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored == plan

        original = i3_session.run(plan)
        with Session(system=i3, tuner=quick_tuner_i3) as other:
            replayed = other.run(restored)
        assert replayed.matches(original)

    def test_stale_format_version_raises_artifact_error(self, i3_session, tmp_path):
        plan = i3_session.plan("lcs", SMALL_DIM)
        payload = plan.to_dict()
        payload["format_version"] = 999
        with pytest.raises(ArtifactError):
            ResolvedPlan.from_dict(payload)

    def test_junk_payload_raises_artifact_error(self):
        with pytest.raises(ArtifactError):
            ResolvedPlan.from_dict({"not": "a plan"})


class TestErrorUnification:
    def test_unknown_application_is_typed(self, i3_session):
        with pytest.raises(UnknownApplicationError):
            i3_session.plan("raytracer", 32)
        # Still a KeyError (and a ReproError) for legacy callers.
        with pytest.raises(KeyError):
            i3_session.plan("raytracer", 32)
        with pytest.raises(ReproError):
            i3_session.plan("raytracer", 32)

    def test_unknown_system_is_typed(self):
        with pytest.raises(UnknownSystemError):
            Session(system="cray-1")

    def test_unknown_tuner_strategy_is_usage_error(self, i3):
        with pytest.raises(UsageError):
            make_tuner("telepathy", i3)

    def test_missing_measured_artifacts_raise_artifact_error(self, i3, tmp_path):
        session = Session(
            system=i3,
            tuner="measured",
            profile_path=tmp_path / "missing.json",
            model_path=tmp_path / "missing_model.json",
        )
        with pytest.raises(ArtifactError, match="repro profile"):
            session.plan("lcs", SMALL_DIM)

    def test_closed_session_refuses_work(self, i3):
        session = Session(system=i3)
        session.close()
        with pytest.raises(UsageError):
            session.plan("lcs", SMALL_DIM, backend="serial", tunables=TunableParams())


class TestTunerProtocol:
    def test_all_builtin_strategies_speak_the_protocol(self, i3, tiny_space):
        learned = make_tuner("learned", i3, space=tiny_space)
        exhaustive = make_tuner("exhaustive", i3, space=tiny_space)
        assert isinstance(learned, Tuner) and isinstance(exhaustive, Tuner)
        assert isinstance(learned, AutoTuner)
        params = LCSApp(dim=32).input_params(32)
        for strategy in (learned, learned.model, exhaustive):
            decision = strategy.resolve("lcs", params)
            assert isinstance(decision, PlanDecision)
            assert decision.tunables.cpu_tile >= 1

    def test_exhaustive_strategy_serves_a_session(self, i3, tiny_space):
        with Session(system=i3, tuner="exhaustive", space=tiny_space) as session:
            result = session.solve("lcs", SMALL_DIM)
            serial = SerialExecutor(i3).execute(LCSApp(dim=SMALL_DIM).problem())
            assert result.matches(serial)
            assert session.plan("lcs", SMALL_DIM).tuner == "exhaustive"
