"""Tests for the streaming observation layer: stats, signatures, LRU log.

The load-bearing contracts:

* :class:`SignatureStats` tracks count/mean/variance exactly (Welford)
  and survives N threads hammering it — totals equal the sequential run;
* :func:`observation_signature` is the *same* key the server queue
  coalesces on, so observations and batches describe identical traffic
  classes;
* :class:`ObservationLog` is bounded: an adversarial stream of distinct
  signatures evicts LRU-style instead of growing without bound.
"""

import math
import threading

import numpy as np
import pytest

from repro.adaptive.observations import (
    ObservationLog,
    SignatureStats,
    observation_signature,
    percentile,
    signature_label,
)
from repro.server.queue import request_signature


class TestObservationSignature:
    def test_matches_the_server_coalescing_key(self):
        for app, dim, mode, kwargs in [
            ("lcs", 48, "functional", {}),
            ("edit-distance", 40, None, {"workers": 2}),
            ("matrix-chain", 32, "simulate", {"backend": "serial"}),
        ]:
            assert observation_signature(app, dim, mode, kwargs) == (
                request_signature(app, dim, mode, kwargs)
            )

    def test_kwargs_order_does_not_matter(self):
        a = observation_signature("lcs", 48, "functional", {"a": 1, "b": 2})
        b = observation_signature("lcs", 48, "functional", {"b": 2, "a": 1})
        assert a == b

    def test_unhashable_override_values_are_tolerated(self):
        sig = observation_signature("lcs", 48, None, {"weights": [1, 2, 3]})
        assert hash(sig) == hash(sig)  # usable as a dict key

    def test_label_is_compact_and_complete(self):
        sig = observation_signature("lcs", 48, "functional", {"workers": 2})
        label = signature_label(sig)
        assert label.startswith("lcs[dim=48]")
        assert "mode=functional" in label
        assert "workers=2" in label
        # mode-less signatures omit the mode clause entirely
        assert signature_label(observation_signature("lcs", 48, None, {})) == (
            "lcs[dim=48]"
        )


class TestSignatureStats:
    def test_moments_match_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.001, 0.05, size=200)
        stats = SignatureStats(reservoir_size=256)
        for value in samples:
            stats.record(float(value))
        assert stats.count == len(samples)
        assert stats.mean == pytest.approx(float(np.mean(samples)), rel=1e-9)
        assert stats.std == pytest.approx(float(np.std(samples, ddof=1)), rel=1e-9)
        assert stats.min_s == float(np.min(samples))
        assert stats.max_s == float(np.max(samples))

    def test_batch_count_folds_multiple_observations(self):
        stats = SignatureStats()
        stats.record(0.01, count=4)
        stats.record(0.03, count=1)
        assert stats.count == 5
        assert stats.mean == pytest.approx((4 * 0.01 + 0.03) / 5)

    def test_threaded_totals_match_sequential(self):
        sequences = {t: [0.001 * (t + 1) + 0.0001 * i for i in range(200)] for t in range(6)}
        stats = SignatureStats(reservoir_size=16)

        def hammer(thread_id):
            for value in sequences[thread_id]:
                stats.record(value)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in sequences]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        flat = [v for seq in sequences.values() for v in seq]
        assert stats.count == len(flat)
        assert stats.min_s == min(flat)
        assert stats.max_s == max(flat)
        assert stats.mean == pytest.approx(sum(flat) / len(flat), rel=1e-6)

    def test_snapshot_is_json_safe_and_in_milliseconds(self):
        stats = SignatureStats()
        stats.record(0.01)
        stats.record(0.02)
        snap = stats.snapshot()
        assert snap["count"] == 2
        assert snap["mean_ms"] == pytest.approx(15.0)
        assert snap["min_ms"] == pytest.approx(10.0)
        assert snap["max_ms"] == pytest.approx(20.0)
        assert snap["expected_ms"] is None
        assert snap["p50_ms"] > 0 and snap["p95_ms"] > 0

    def test_empty_snapshot_is_zeroed(self):
        snap = SignatureStats().snapshot()
        assert snap["count"] == 0
        assert snap["min_ms"] == 0.0 and snap["max_ms"] == 0.0
        assert not math.isinf(snap["min_ms"])


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 3.0  # round(0.5*3) = 2
        assert percentile([], 95) == 0.0


class TestObservationLog:
    def test_counts_every_folded_request(self):
        log = ObservationLog(maxsize=8)
        sig = observation_signature("lcs", 48, "functional", {})
        log.record(sig, 0.01, count=3)
        log.record(sig, 0.02)
        assert log.observations == 4
        assert log.stats_for(sig).count == 4

    def test_lru_eviction_is_bounded(self):
        log = ObservationLog(maxsize=2)
        sigs = [observation_signature("lcs", d, None, {}) for d in (8, 16, 32)]
        for sig in sigs:
            log.record(sig, 0.01)
        assert len(log) == 2
        assert log.evictions == 1
        assert log.stats_for(sigs[0]) is None  # oldest evicted
        assert log.stats_for(sigs[2]) is not None

    def test_update_refreshes_recency(self):
        log = ObservationLog(maxsize=2)
        a = observation_signature("lcs", 8, None, {})
        b = observation_signature("lcs", 16, None, {})
        c = observation_signature("lcs", 32, None, {})
        log.record(a, 0.01)
        log.record(b, 0.01)
        log.record(a, 0.01)  # refresh a; b becomes LRU
        log.record(c, 0.01)
        assert log.stats_for(b) is None
        assert log.stats_for(a) is not None

    def test_snapshot_totals_cover_everything_despite_limit(self):
        log = ObservationLog(maxsize=8)
        for d in (8, 16, 32):
            log.record(observation_signature("lcs", d, None, {}), 0.01)
        snap = log.snapshot(limit=1)
        assert snap["observations"] == 3
        assert snap["tracked_signatures"] == 3
        assert len(snap["signatures"]) == 1  # limited rendering only

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ObservationLog(maxsize=0)
