"""End-to-end tests of the adaptive loop through a real in-process server.

The acceptance contract of the subsystem:

* replaying the committed cache-smoke trace with a ``slow@`` fault
  injected at two consecutive executions of one signature latches drift
  *exactly there* and nowhere else (shadow mode: observed, never acted);
* the same replay without faults is drift-free — zero events, zero
  would-be swaps, and every completed request counted as an observation;
* in ``live`` mode a drifted measured-tuner plan is swapped through the
  session's plan LRU, keeps serving bit-exact answers, and is confirmed —
  or rolled back (and the signature pinned) when the regression persists;
* the whole loop is visible in ``/metrics`` and renderable as a report.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    DriftConfig,
    render_adaptive_report,
)
from repro.adaptive.observations import observation_signature
from repro.autotuner.measured import (
    MeasuredProfile,
    MeasuredRecord,
    MeasuredTuner,
)
from repro.core.exceptions import UsageError
from repro.core.params import InputParams, TunableParams
from repro.server import FaultPlan, ReproServer, ServerConfig
from repro.server.loadgen import _adaptive_delta
from repro.session import Session

TRACE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "traces"
    / "cache_smoke_trace.json"
)

#: Wide absolute floor so host noise cannot breach; the injected 0.3s always does.
TEST_DRIFT = DriftConfig(
    ratio_threshold=3.0, min_samples=3, hysteresis=2, min_excess_s=0.1
)


def trace_entries():
    """The committed trace's (app, dim) sequence, in replay order."""
    payload = json.loads(TRACE_PATH.read_text(encoding="utf-8"))
    return [(entry["app"], entry["dim"]) for entry in payload["entries"]]


def consecutive_ordinals(entries, app, dim, *, after=0):
    """Two consecutive 1-based ordinals of ``(app, dim)``.

    ``after`` skips pairs until at least that many earlier occurrences of
    the signature exist — the drift detector calibrates on those, so a
    fault injected any sooner is silently absorbed as calibration data.
    """
    prior = 0
    for index in range(len(entries) - 1):
        if entries[index] == (app, dim):
            if prior >= after and entries[index + 1] == (app, dim):
                return index + 1, index + 2
            prior += 1
    raise AssertionError(f"no consecutive {(app, dim)} entries in the trace")


def replay(server, entries):
    """Issue the trace sequentially: execution ordinal == trace position."""
    for app, dim in entries:
        server.solve(app, dim, timeout=60)


class TestShadowModeOnTrace:
    def test_injected_slowdown_drifts_exactly_at_the_faulted_signature(
        self, adaptive_session
    ):
        entries = trace_entries()
        first, second = consecutive_ordinals(
            entries, "lcs", 48, after=TEST_DRIFT.min_samples
        )
        plan = f"slow@{first}:0.3,slow@{second}:0.3"
        config = AdaptiveConfig(mode="shadow", drift=TEST_DRIFT)
        server = ReproServer(
            adaptive_session,
            ServerConfig(queue_capacity=128, adaptive="shadow"),
            fault_plan=FaultPlan.parse(plan),
            adaptive_config=config,
        ).start()
        try:
            replay(server, entries)
            metrics = server.metrics()
        finally:
            server.close()

        adaptive = metrics["adaptive"]
        assert adaptive["mode"] == "shadow"
        assert adaptive["errors"] == 0, adaptive["last_error"]
        # every completed request became an observation
        assert adaptive["observations"] == metrics["requests"]["completed"]
        assert adaptive["observations"] == len(entries)
        # drift latched exactly once, exactly at the faulted signature
        assert adaptive["drift"]["events"] == 1
        (event,) = adaptive["drift"]["recent"]
        assert event["signature"] == "lcs[dim=48] mode=functional"
        assert event["observed_ms"] >= 300.0
        # shadow evaluated, but shadow mode never swaps
        assert adaptive["shadow"]["evaluations"] == 1
        assert adaptive["swaps"]["applied"] == 0
        assert adaptive_session.stats["plans_adopted"] == 0

    def test_stable_replay_is_drift_free(self, adaptive_session):
        entries = trace_entries()
        config = AdaptiveConfig(mode="shadow", drift=TEST_DRIFT)
        server = ReproServer(
            adaptive_session,
            ServerConfig(queue_capacity=128, adaptive="shadow"),
            adaptive_config=config,
        ).start()
        try:
            replay(server, entries)
            metrics = server.metrics()
        finally:
            server.close()

        adaptive = metrics["adaptive"]
        assert adaptive["errors"] == 0, adaptive["last_error"]
        assert adaptive["observations"] == metrics["requests"]["completed"]
        assert adaptive["drift"]["events"] == 0
        assert adaptive["shadow"]["would_swap"] == 0
        assert adaptive["swaps"]["applied"] == 0

    def test_per_signature_breakdown_reaches_the_metrics_page(
        self, adaptive_session
    ):
        server = ReproServer(
            adaptive_session, ServerConfig(queue_capacity=16)
        ).start()
        try:
            for _ in range(4):
                server.solve("lcs", 48, timeout=60)
            metrics = server.metrics()
        finally:
            server.close()
        breakdown = metrics["signatures"]
        # requests that didn't pin a mode are labelled without the clause
        label = "lcs[dim=48]"
        assert label in breakdown
        stats = breakdown[label]
        assert stats["count"] == 4
        assert stats["mean_ms"] > 0
        assert stats["p50_ms"] > 0 and stats["p95_ms"] >= stats["p50_ms"]
        # JSON-safe end to end
        json.dumps(metrics)


# ----------------------------------------------------------------------
# Live promotion on a measured tuner
# ----------------------------------------------------------------------
def synthetic_measured_tuner():
    """A measured tuner whose profile makes vectorized the clear winner.

    Serial is measured 4x slower, so a live observation showing the
    vectorized plan at ~100ms flips the retrained choice to serial —
    deterministically, whatever the host.
    """
    records = []
    for dim in (32, 48, 64):
        params = InputParams(dim=dim, tsize=0.5, dsize=0)
        for backend, wall in (("serial", 0.004), ("vectorized", 0.001)):
            records.append(
                MeasuredRecord(
                    app="lcs",
                    backend=backend,
                    workers=1,
                    params=params,
                    tunables=TunableParams(cpu_tile=8),
                    wall_s=wall,
                )
            )
    profile = MeasuredProfile(system="local", host={"cores": 1}, records=records)
    return MeasuredTuner.train(profile)


LIVE_CONFIG = AdaptiveConfig(mode="live", drift=TEST_DRIFT)


class TestLivePromotion:
    def test_swapped_plan_serves_bit_exactly_and_confirms(self):
        tuner = synthetic_measured_tuner()
        with Session(system="local", tuner=synthetic_measured_tuner()) as ref:
            expected = ref.solve("lcs", 48)
        session = Session(system="local", tuner=tuner)
        assert session.plan("lcs", 48).backend == "vectorized"
        # calibration is 3 executions; faults at 4 and 5 latch the drift
        server = ReproServer(
            session,
            ServerConfig(queue_capacity=16, adaptive="live"),
            fault_plan=FaultPlan.parse("slow@4:0.3,slow@5:0.3"),
            adaptive_config=LIVE_CONFIG,
            own_session=True,
        ).start()
        try:
            for index in range(9):
                result = server.solve("lcs", 48, timeout=60)
                assert np.array_equal(
                    result.grid.values, expected.grid.values
                ), f"answer diverged at request {index}"
            swapped = session.plan("lcs", 48)
            metrics = server.metrics()
        finally:
            server.close()

        adaptive = metrics["adaptive"]
        assert adaptive["errors"] == 0, adaptive["last_error"]
        assert adaptive["drift"]["events"] == 1
        assert adaptive["swaps"]["applied"] == 1
        assert adaptive["swaps"]["confirmed"] == 1
        assert adaptive["swaps"]["rolled_back"] == 0
        # the swap is live in the session's plan cache, attributed to the loop
        assert swapped.backend == "serial"
        assert swapped.tuner == "adaptive"
        assert session.stats["plans_adopted"] == 1
        installed = adaptive["swaps"]["installed"]
        assert installed["lcs[dim=48] mode=functional"]["to_backend"] == "serial"

    def test_persistent_regression_rolls_back_and_pins(self):
        session = Session(system="local", tuner=synthetic_measured_tuner())
        # faults persist past the swap (executions 4-8), so the promoted
        # plan looks just as slow and must be rolled back
        server = ReproServer(
            session,
            ServerConfig(queue_capacity=16, adaptive="live"),
            fault_plan=FaultPlan.parse(
                "slow@4:0.3,slow@5:0.3,slow@6:0.3,slow@7:0.3,slow@8:0.3"
            ),
            adaptive_config=LIVE_CONFIG,
            own_session=True,
        ).start()
        try:
            for _ in range(10):
                server.solve("lcs", 48, timeout=60)
            restored = session.plan("lcs", 48)
            metrics = server.metrics()
        finally:
            server.close()

        adaptive = metrics["adaptive"]
        assert adaptive["errors"] == 0, adaptive["last_error"]
        assert adaptive["swaps"]["applied"] == 1
        assert adaptive["swaps"]["rolled_back"] == 1
        assert adaptive["swaps"]["confirmed"] == 0
        assert adaptive["swaps"]["pinned"] == ["lcs[dim=48] mode=functional"]
        # the original plan is back in charge
        assert restored.backend == "vectorized"

    def test_swap_budget_bounds_promotions(self):
        session = Session(system="local", tuner=synthetic_measured_tuner())
        config = AdaptiveConfig(mode="live", drift=TEST_DRIFT, swap_budget=0)
        server = ReproServer(
            session,
            ServerConfig(queue_capacity=16, adaptive="live"),
            fault_plan=FaultPlan.parse("slow@4:0.3,slow@5:0.3"),
            adaptive_config=config,
            own_session=True,
        ).start()
        try:
            for _ in range(6):
                server.solve("lcs", 48, timeout=60)
            metrics = server.metrics()
        finally:
            server.close()
        adaptive = metrics["adaptive"]
        assert adaptive["drift"]["events"] == 1
        assert adaptive["swaps"]["applied"] == 0
        assert adaptive["swaps"]["budget_denied"] == 1


# ----------------------------------------------------------------------
# Session-level primitives
# ----------------------------------------------------------------------
class TestSessionPrimitives:
    def test_adopt_plan_replaces_the_cached_answer(self, adaptive_session):
        before = adaptive_session.stats["plans_adopted"]
        plan = adaptive_session.plan("matrix-chain", 24)
        adopted = plan.with_(expected_s=1.23, tuner="adaptive")
        adaptive_session.adopt_plan(adopted)
        assert adaptive_session.plan("matrix-chain", 24) is adopted
        assert adaptive_session.stats["plans_adopted"] == before + 1
        # manual overrides bypass the adopted plan
        manual = adaptive_session.plan("matrix-chain", 24, backend="serial")
        assert manual.tuner == "manual"

    def test_run_observer_sees_every_solve(self, adaptive_session):
        seen = []
        adaptive_session.attach_observer(
            lambda plan, mode, wall_s: seen.append((plan.app, mode, wall_s))
        )
        try:
            adaptive_session.solve("lcs", 32)
        finally:
            adaptive_session.attach_observer(None)
        assert len(seen) == 1
        app, mode, wall_s = seen[0]
        assert app == "lcs"
        assert wall_s > 0

    def test_controller_record_run_feeds_the_run_log(self, adaptive_session):
        controller = AdaptiveController(adaptive_session)
        adaptive_session.attach_observer(controller.record_run)
        try:
            adaptive_session.solve("lcs", 32)
            adaptive_session.solve("lcs", 32)
        finally:
            adaptive_session.attach_observer(None)
        assert controller.run_log.observations == 2
        sig = observation_signature("lcs", 32, adaptive_session.mode.value, {})
        assert controller.run_log.stats_for(sig).count == 2


# ----------------------------------------------------------------------
# Reporting / artifact plumbing
# ----------------------------------------------------------------------
class TestReporting:
    def test_report_renders_predicted_observed_and_swap(self):
        session = Session(system="local", tuner=synthetic_measured_tuner())
        server = ReproServer(
            session,
            ServerConfig(queue_capacity=16, adaptive="live"),
            fault_plan=FaultPlan.parse("slow@4:0.3,slow@5:0.3"),
            adaptive_config=LIVE_CONFIG,
            own_session=True,
        ).start()
        try:
            for _ in range(9):
                server.solve("lcs", 48, timeout=60)
            adaptive = server.metrics()["adaptive"]
        finally:
            server.close()
        text = render_adaptive_report(adaptive)
        assert "adaptive tuning [live]" in text
        assert "lcs[dim=48] mode=functional" in text
        assert "<< LIVE" in text
        assert "swaps: 1 applied" in text

    def test_report_renders_off_mode(self):
        assert "off" in render_adaptive_report(None)

    def test_adaptive_delta_isolates_this_run(self):
        before = {
            "observations": 100,
            "drift": {"events": 2},
            "shadow": {"evaluations": 2, "would_swap": 1},
            "swaps": {"applied": 1, "rolled_back": 0},
            "errors": 0,
            "mode": "shadow",
        }
        after = {
            "observations": 160,
            "drift": {"events": 3},
            "shadow": {"evaluations": 3, "would_swap": 1},
            "swaps": {"applied": 1, "rolled_back": 0},
            "errors": 0,
            "mode": "shadow",
        }
        delta = _adaptive_delta(before, after)
        assert delta["observations"] == 60
        assert delta["drift_events"] == 1
        assert delta["shadow_evaluations"] == 1
        assert delta["would_swap"] == 0
        assert delta["swaps_applied"] == 0
        assert delta["mode"] == "shadow"
        # cold start: no before snapshot means the run owns every counter
        assert _adaptive_delta(None, after)["observations"] == 160
        # adaptive off: no section, no delta
        assert _adaptive_delta(before, None) is None


class TestConfigSurface:
    def test_server_config_rejects_unknown_adaptive_mode(self):
        from repro.core.exceptions import ServerError

        with pytest.raises(ServerError):
            ServerConfig(adaptive="everything")

    def test_adaptive_config_validation(self):
        with pytest.raises(UsageError):
            AdaptiveConfig(mode="sometimes")
        with pytest.raises(UsageError):
            AdaptiveConfig(swap_budget=-1)
        with pytest.raises(UsageError):
            AdaptiveConfig(rollback_ratio=0.0)

    def test_adaptive_off_builds_no_controller(self, adaptive_session):
        server = ReproServer(
            adaptive_session, ServerConfig(queue_capacity=8, adaptive="off")
        ).start()
        try:
            server.solve("lcs", 32, timeout=60)
            metrics = server.metrics()
        finally:
            server.close()
        assert server.adaptive is None
        assert metrics["adaptive"] is None
