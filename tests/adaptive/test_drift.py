"""Tests for the calibrated drift detector.

The detector's contract is determinism plus noise-immunity: the same
observation sequence always yields the same events, a single outlier
never latches, and microsecond-scale noise is below the absolute floor
no matter the ratio.
"""

import pytest

from repro.adaptive.drift import DriftConfig, DriftDetector, DriftEvent
from repro.adaptive.observations import observation_signature
from repro.core.exceptions import UsageError

SIG = observation_signature("lcs", 48, "functional", {})
CONFIG = DriftConfig(ratio_threshold=3.0, min_samples=3, hysteresis=2, min_excess_s=0.05)


def feed(detector, values, expected_s=0.01):
    """Assess a sequence; return the events latched along the way."""
    events = []
    for value in values:
        event = detector.assess(SIG, value, expected_s)
        if event is not None:
            events.append(event)
    return events


class TestCalibration:
    def test_no_events_while_calibrating(self):
        detector = DriftDetector(CONFIG)
        # Wildly varying calibration samples still produce no event.
        assert feed(detector, [0.001, 5.0, 0.002]) == []
        assert detector.snapshot()["events"] == 0

    def test_reference_is_the_calibration_mean(self):
        detector = DriftDetector(CONFIG)
        events = feed(detector, [0.01, 0.01, 0.01, 0.5, 0.5])
        assert len(events) == 1
        assert events[0].reference_s == pytest.approx(0.01)
        assert events[0].observed_s == pytest.approx(0.5)
        assert events[0].ratio == pytest.approx(50.0)


class TestBreachRule:
    def test_ratio_alone_is_not_enough_below_the_floor(self):
        # Microsecond baseline: 100x the reference is still < min_excess_s.
        detector = DriftDetector(CONFIG)
        assert feed(detector, [1e-6] * 3 + [1e-4] * 10) == []

    def test_absolute_excess_alone_is_not_enough(self):
        # 100ms baseline + 60ms excess clears the floor but not the 3x ratio.
        detector = DriftDetector(CONFIG)
        assert feed(detector, [0.1] * 3 + [0.16] * 10) == []

    def test_both_conditions_latch(self):
        detector = DriftDetector(CONFIG)
        assert len(feed(detector, [0.01] * 3 + [0.5] * 2)) == 1


class TestHysteresis:
    def test_single_outlier_never_latches(self):
        detector = DriftDetector(CONFIG)
        values = [0.01] * 3 + [0.5] + [0.01] * 5 + [0.5] + [0.01] * 5
        assert feed(detector, values) == []

    def test_latched_event_does_not_refire_while_drifted(self):
        detector = DriftDetector(CONFIG)
        events = feed(detector, [0.01] * 3 + [0.5] * 10)
        assert len(events) == 1
        assert detector.is_drifted(SIG)

    def test_recovery_then_redrift_fires_a_fresh_event(self):
        detector = DriftDetector(CONFIG)
        values = (
            [0.01] * 3  # calibrate
            + [0.5] * 2  # latch (event 1)
            + [0.01] * 2  # recover (hysteresis clean executions)
            + [0.5] * 2  # latch again (event 2)
        )
        events = feed(detector, values)
        assert len(events) == 2
        snap = detector.snapshot()
        assert snap["events"] == 2
        assert snap["recoveries"] == 1

    def test_reset_recalibrates_from_scratch(self):
        detector = DriftDetector(CONFIG)
        feed(detector, [0.01] * 3 + [0.5] * 2)
        detector.reset(SIG)
        assert not detector.is_drifted(SIG)
        # Post-reset the slow latency becomes the new normal: calibration
        # re-runs and no event fires against the old baseline.
        assert feed(detector, [0.5] * 6) == []


class TestDeterminism:
    def test_same_sequence_same_events(self):
        values = [0.01] * 3 + [0.2, 0.5, 0.01, 0.6, 0.7, 0.01]
        runs = []
        for _ in range(3):
            detector = DriftDetector(CONFIG)
            runs.append(
                [(e.observed_s, e.assessment) for e in feed(detector, values)]
            )
        assert runs[0] == runs[1] == runs[2]


class TestEventPayload:
    def test_to_dict_is_json_safe(self):
        detector = DriftDetector(CONFIG)
        (event,) = feed(detector, [0.01] * 3 + [0.5] * 2, expected_s=0.012)
        payload = event.to_dict()
        assert payload["signature"] == "lcs[dim=48] mode=functional"
        assert payload["observed_ms"] == pytest.approx(500.0)
        assert payload["expected_ms"] == pytest.approx(12.0)
        assert payload["assessment"] == 5
        assert DriftEvent(SIG, 0.5, 0.0, None, 1).ratio == float("inf")

    def test_snapshot_carries_config_and_recent_events(self):
        detector = DriftDetector(CONFIG)
        feed(detector, [0.01] * 3 + [0.5] * 2)
        snap = detector.snapshot()
        assert snap["active"] == 1
        assert snap["config"]["ratio_threshold"] == 3.0
        assert len(snap["recent"]) == 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ratio_threshold": 1.0},
            {"ratio_threshold": 0.5},
            {"min_samples": 0},
            {"hysteresis": 0},
            {"min_excess_s": -0.1},
        ],
    )
    def test_impossible_thresholds_rejected(self, kwargs):
        with pytest.raises(UsageError):
            DriftConfig(**kwargs)
