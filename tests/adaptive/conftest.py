"""Shared fixtures of the adaptive-tuning tests.

Mirrors the serving suite: one module-scoped session over the shared
tiny-space learned tuner, so the suite trains once and every in-process
server borrows the same warmed plans.
"""

from __future__ import annotations

import pytest

from repro.session import Session


@pytest.fixture(scope="module")
def adaptive_session(quick_tuner_i3, i3):
    """A session over the shared tiny-space tuner, shared across tests."""
    with Session(system=i3, tuner=quick_tuner_i3) as session:
        yield session
