"""Tests for CPU / GPU / system specifications."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.system import InterconnectSpec, SystemSpec


class TestCPUSpec:
    def test_derived_quantities(self):
        cpu = CPUSpec(name="test", freq_mhz=1600, cores=8, mem_gb=8)
        assert cpu.freq_ghz == pytest.approx(1.6)
        assert cpu.workers == 8
        assert 4 <= cpu.effective_cores <= 8

    def test_no_hyperthreading_effective_cores(self):
        cpu = CPUSpec(name="t", freq_mhz=1000, cores=4, mem_gb=4, hyperthreaded=False)
        assert cpu.effective_cores == 4.0

    def test_describe(self):
        assert "8 cores" in CPUSpec(name="x", freq_mhz=1600, cores=8, mem_gb=8).describe()

    @pytest.mark.parametrize("kwargs", [
        dict(name="x", freq_mhz=0, cores=4, mem_gb=4),
        dict(name="x", freq_mhz=1000, cores=0, mem_gb=4),
        dict(name="x", freq_mhz=1000, cores=4, mem_gb=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CPUSpec(**kwargs)


class TestGPUSpec:
    def test_parallel_width(self):
        gpu = GPUSpec(name="g", freq_mhz=1200, compute_units=15, mem_gb=1.6)
        assert gpu.parallel_width == 15 * gpu.lanes_per_cu
        assert gpu.mem_bytes == int(1.6 * 1024**3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GPUSpec(name="g", freq_mhz=1200, compute_units=0, mem_gb=1)
        with pytest.raises(InvalidParameterError):
            GPUSpec(name="g", freq_mhz=1200, compute_units=4, mem_gb=1, lanes_per_cu=0)


class TestInterconnect:
    def test_transfer_time_has_latency_floor(self):
        link = InterconnectSpec(bandwidth_gbs=5.0, latency_us=20.0)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1) == pytest.approx(20e-6, rel=1e-3)
        big = link.transfer_time(5 * 10**9)
        assert big == pytest.approx(1.0 + 20e-6)

    def test_transfer_monotone_in_bytes(self):
        link = InterconnectSpec()
        assert link.transfer_time(10**6) < link.transfer_time(10**8)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            InterconnectSpec(bandwidth_gbs=0)
        with pytest.raises(InvalidParameterError):
            InterconnectSpec(latency_us=-1)
        with pytest.raises(InvalidParameterError):
            InterconnectSpec().transfer_time(-5)


class TestSystemSpec:
    def test_gpu_access(self):
        gpu = GPUSpec(name="g", freq_mhz=1200, compute_units=8, mem_gb=2)
        system = SystemSpec(name="s", cpu=CPUSpec("c", 1600, 4, 4), gpus=(gpu, gpu))
        assert system.gpu_count == 2 and system.max_usable_gpus == 2
        assert system.gpu(1).name == "g"
        with pytest.raises(InvalidParameterError):
            system.gpu(2)

    def test_cpu_only_system(self):
        system = SystemSpec(name="cpu-only", cpu=CPUSpec("c", 1600, 4, 4))
        assert not system.has_gpu and system.max_usable_gpus == 0

    def test_max_usable_gpus_capped_at_two(self):
        gpu = GPUSpec(name="g", freq_mhz=1200, compute_units=8, mem_gb=2)
        system = SystemSpec(name="s", cpu=CPUSpec("c", 1600, 4, 4), gpus=(gpu,) * 4)
        assert system.max_usable_gpus == 2

    def test_describe_lists_devices(self):
        gpu = GPUSpec(name="gpu-x", freq_mhz=1200, compute_units=8, mem_gb=2)
        text = SystemSpec(name="s", cpu=CPUSpec("c", 1600, 4, 4), gpus=(gpu,)).describe()
        assert "gpu-x" in text and "Interconnect" in text
