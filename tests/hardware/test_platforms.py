"""Tests for the Table 4 platform presets."""

import pytest

from repro.hardware import platforms


class TestTable4Systems:
    def test_three_systems_registered(self):
        assert len(platforms.ALL_SYSTEMS) == 3
        assert {s.name for s in platforms.ALL_SYSTEMS} == {"i3-540", "i7-2600K", "i7-3820"}

    def test_i3_row(self):
        s = platforms.I3_540
        assert s.cpu.freq_mhz == 1200 and s.cpu.cores == 4 and s.cpu.mem_gb == 4
        assert s.gpu_count == 1
        assert s.gpu(0).name == "GeForce GTX 480"
        assert s.gpu(0).compute_units == 15 and s.gpu(0).freq_mhz == 1401

    def test_i7_2600k_row(self):
        s = platforms.I7_2600K
        assert s.cpu.freq_mhz == 1600 and s.cpu.cores == 8 and s.cpu.mem_gb == 8
        assert s.gpu_count == 4  # 4x GTX 590 dies
        assert s.max_usable_gpus == 2
        assert s.gpu(0).compute_units == 16 and s.gpu(0).freq_mhz == 1215

    def test_i7_3820_row(self):
        s = platforms.I7_3820
        assert s.cpu.freq_mhz == 3601 and s.cpu.cores == 8 and s.cpu.mem_gb == 16
        assert s.gpu_count == 2
        assert {g.name for g in s.gpus} == {"Tesla C2070", "Tesla C2075"}
        assert s.gpu(0).compute_units == 14 and s.gpu(0).freq_mhz == 1147

    def test_cpu_speed_ordering_matches_paper_narrative(self):
        # The i3 has the slowest cores, the i7-3820 the fastest.
        assert (
            platforms.I3_540.cpu.freq_mhz
            < platforms.I7_2600K.cpu.freq_mhz
            < platforms.I7_3820.cpu.freq_mhz
        )

    def test_lookup_by_name(self):
        assert platforms.get_system("i3-540") is platforms.I3_540
        with pytest.raises(KeyError):
            platforms.get_system("raspberry-pi")

    def test_cpu_only_variant(self):
        variant = platforms.cpu_only_variant(platforms.I7_3820)
        assert not variant.has_gpu
        assert variant.cpu is platforms.I7_3820.cpu

    def test_custom_system(self):
        system = platforms.custom_system("lab", cpu_freq_mhz=2000, cores=16, gpu_count=2)
        assert system.gpu_count == 2 and system.cpu.cores == 16
