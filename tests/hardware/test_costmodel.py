"""Tests for the analytic cost model — the paper's qualitative trade-offs."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams, TunableParams
from repro.hardware import platforms
from repro.hardware.costmodel import CostConstants, CostModel, PhaseBreakdown


def ip(dim=1900, tsize=500, dsize=1):
    return InputParams(dim=dim, tsize=tsize, dsize=dsize)


class TestCostConstants:
    def test_cache_factor_shape(self):
        c = CostConstants()
        # Untiled is worst; moderate tiles are best; huge tiles degrade again.
        assert c.cache_factor(1) > c.cache_factor(4) > c.cache_factor(8)
        assert c.cache_factor(8) <= c.cache_factor(100)
        with pytest.raises(InvalidParameterError):
            c.cache_factor(0)

    def test_scaled_override(self):
        c = CostConstants().scaled(gpu_startup_s=1.0)
        assert c.gpu_startup_s == 1.0
        assert CostConstants().gpu_startup_s != 1.0


class TestBreakdown:
    def test_totals_are_sums(self):
        b = PhaseBreakdown(pre_s=1, post_s=2, gpu_compute_s=3, transfer_s=4, startup_s=5)
        assert b.cpu_s == 3 and b.gpu_s == 12 and b.total_s == 15
        assert b.to_dict()["total_s"] == 15


class TestCostModelBasics:
    def test_serial_scales_with_cells_and_tsize(self, i7_2600k):
        model = CostModel(i7_2600k)
        base = model.serial_time(ip(dim=500, tsize=100))
        assert model.serial_time(ip(dim=1000, tsize=100)) == pytest.approx(4 * base, rel=0.01)
        assert model.serial_time(ip(dim=500, tsize=200)) > 1.9 * base

    def test_cpu_parallel_faster_than_serial(self, any_system):
        model = CostModel(any_system)
        params = ip(dim=1100, tsize=500)
        assert model.baseline_cpu_parallel(params) < model.baseline_serial(params)

    def test_cpu_parallel_speedup_bounded_by_cores(self, i7_2600k):
        model = CostModel(i7_2600k)
        params = ip(dim=2700, tsize=1000)
        speedup = model.baseline_serial(params) / model.baseline_cpu_parallel(params)
        assert 2.0 < speedup <= i7_2600k.cpu.cores + 1

    def test_hybrid_cpu_only_has_no_gpu_cost(self, i7_2600k):
        model = CostModel(i7_2600k)
        b = model.hybrid_breakdown(ip(), TunableParams(cpu_tile=8))
        assert b.gpu_s == 0.0 and b.cpu_s > 0.0

    def test_gpu_config_includes_startup_and_transfer(self, i7_2600k):
        model = CostModel(i7_2600k)
        b = model.hybrid_breakdown(ip(), TunableParams.from_encoding(8, 500, -1, 1))
        assert b.startup_s > 0 and b.transfer_s > 0 and b.gpu_launch_s > 0

    def test_gpu_on_cpu_only_system_rejected(self, i7_2600k):
        model = CostModel(platforms.cpu_only_variant(i7_2600k))
        with pytest.raises(InvalidParameterError):
            model.predict(ip(), TunableParams.from_encoding(1, 10, -1, 1))

    def test_dual_gpu_on_single_gpu_system_rejected(self, i3):
        model = CostModel(i3)
        with pytest.raises(InvalidParameterError):
            model.predict(ip(), TunableParams.from_encoding(1, 100, 5, 1))


class TestPaperTradeoffs:
    """The qualitative effects of Section 2.1 / 4.1 must hold in the model."""

    def test_gpu_wins_for_coarse_grain_large_problems(self, any_system):
        model = CostModel(any_system)
        params = ip(dim=2700, tsize=8000, dsize=1)
        # Use as many GPUs as the platform offers: on the fast-CPU i7-3820 a
        # single Tesla alone does not beat all eight cores (consistent with
        # the paper's observation about GPU-only on the i7 systems).
        gpu = model.baseline_gpu_only(params, gpu_count=any_system.max_usable_gpus)
        cpu = model.baseline_cpu_parallel(params)
        assert gpu < cpu

    def test_cpu_wins_for_fine_grain_small_problems(self, any_system):
        model = CostModel(any_system)
        params = ip(dim=500, tsize=10, dsize=1)
        assert model.baseline_cpu_parallel(params) < model.baseline_gpu_only(params)

    def test_i3_gpu_threshold_lower_than_i7(self):
        """The slow-CPU i3 should favour the GPU at lower tsize than the i7s."""
        params = ip(dim=1100, tsize=200, dsize=1)
        i3_model = CostModel(platforms.I3_540)
        i7_model = CostModel(platforms.I7_3820)
        i3_ratio = i3_model.baseline_gpu_only(params) / i3_model.baseline_cpu_parallel(params)
        i7_ratio = i7_model.baseline_gpu_only(params) / i7_model.baseline_cpu_parallel(params)
        assert i3_ratio < i7_ratio

    def test_dsize_raises_gpu_cost(self, i7_2600k):
        model = CostModel(i7_2600k)
        fat = model.baseline_gpu_only(ip(dsize=5))
        thin = model.baseline_gpu_only(ip(dsize=1))
        assert fat > thin
        # ... while barely affecting the CPU path.
        cpu_fat = model.baseline_cpu_parallel(ip(dsize=5))
        cpu_thin = model.baseline_cpu_parallel(ip(dsize=1))
        assert (fat - thin) > (cpu_fat - cpu_thin)

    def test_best_tuned_speedup_in_paper_range(self):
        """Max tuned speedup over serial should be of order 10-25x (paper: 20x)."""
        best = 0.0
        for system in platforms.ALL_SYSTEMS:
            model = CostModel(system)
            params = ip(dim=2700, tsize=12000, dsize=1)
            halo = 0 if system.max_usable_gpus >= 2 else -1
            tuned = model.predict(
                params, TunableParams.from_encoding(8, 2699, halo, 1)
            )
            best = max(best, model.baseline_serial(params) / tuned)
        assert 8.0 < best < 40.0

    def test_gpu_only_worse_than_cpu_only_on_fast_cpu_low_granularity(self):
        """On the i7 systems, tiny tsize makes the GPU-only scheme lose badly."""
        model = CostModel(platforms.I7_3820)
        params = ip(dim=1100, tsize=50, dsize=1)
        assert model.baseline_gpu_only(params) > 2 * model.baseline_cpu_parallel(params)

    def test_halo_tradeoff_nonmonotone_for_coarse_grain(self, i7_3820):
        """For large tsize, a huge halo must cost more than a moderate one.

        The band is kept partial (band < dim-1) so the paper's constraint
        halo <= 0.5 * (first offloaded diagonal length) leaves headroom.
        """
        model = CostModel(i7_3820)
        params = ip(dim=1900, tsize=8000, dsize=1)
        def rtime(halo):
            return model.predict(params, TunableParams.from_encoding(8, 1200, halo, 1))
        assert rtime(4) < rtime(300)

    def test_large_halo_helps_fine_grain(self, i7_3820):
        """For small tsize the swap latency dominates: larger halo should help."""
        model = CostModel(i7_3820)
        params = ip(dim=1900, tsize=100, dsize=1)
        def rtime(halo):
            return model.predict(params, TunableParams.from_encoding(8, 1200, halo, 1))
        assert rtime(50) < rtime(0)

    def test_halo_clipped_to_half_first_diagonal(self, i7_3820):
        """With a maximal band the first offloaded diagonal has length 1, so
        the halo is forced to 0 (Table 3's upper bound)."""
        model = CostModel(i7_3820)
        params = ip(dim=1900, tsize=1000, dsize=1)
        a = model.predict(params, TunableParams.from_encoding(8, 1899, 0, 1))
        b = model.predict(params, TunableParams.from_encoding(8, 1899, 50, 1))
        assert a == pytest.approx(b)

    def test_gpu_tiling_reduces_launches_but_adds_sync(self, i7_2600k):
        model = CostModel(i7_2600k)
        params = ip(dim=1900, tsize=2000, dsize=1)
        untiled = model.hybrid_breakdown(params, TunableParams.from_encoding(8, 1899, -1, 1))
        tiled = model.hybrid_breakdown(params, TunableParams.from_encoding(8, 1899, -1, 8))
        assert tiled.gpu_launch_s < untiled.gpu_launch_s
        assert tiled.gpu_sync_s > untiled.gpu_sync_s == 0.0
        # When compute dominates, tiling is counter-productive overall (Sec 4.1.1).
        assert tiled.total_s > untiled.total_s

    def test_dual_gpu_helps_large_coarse_problems(self, i7_3820):
        model = CostModel(i7_3820)
        params = ip(dim=2700, tsize=8000, dsize=1)
        single = model.predict(params, TunableParams.from_encoding(8, 2699, -1, 1))
        dual = model.predict(params, TunableParams.from_encoding(8, 2699, 20, 1))
        assert dual < single
