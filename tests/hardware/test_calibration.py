"""Tests for the calibration layer."""

import pytest

from repro.hardware import platforms
from repro.hardware.calibration import (
    BASE_CONSTANTS,
    constants_for_system,
    host_calibrated_constants,
    measure_host_iter_ns,
)


class TestConstantsForSystem:
    def test_known_systems_have_overrides(self):
        i3 = constants_for_system(platforms.I3_540)
        i7 = constants_for_system("i7-2600K")
        tesla = constants_for_system("i7-3820")
        assert i3.gpu_iter_penalty != BASE_CONSTANTS.gpu_iter_penalty or i3.gpu_startup_s != BASE_CONSTANTS.gpu_startup_s
        assert i7.multi_gpu_launch_factor >= BASE_CONSTANTS.multi_gpu_launch_factor
        assert tesla.gpu_iter_penalty < i7.gpu_iter_penalty

    def test_unknown_system_gets_baseline(self):
        custom = platforms.custom_system("lab", 2000, 8)
        assert constants_for_system(custom) == BASE_CONSTANTS

    def test_accepts_string_or_spec(self):
        assert constants_for_system("i3-540") == constants_for_system(platforms.I3_540)


class TestHostMeasurement:
    def test_measure_host_iter_positive(self):
        ns = measure_host_iter_ns(samples=1, iterations=20_000)
        assert 0.0 < ns < 1e6

    def test_measure_validates_arguments(self):
        with pytest.raises(ValueError):
            measure_host_iter_ns(samples=0)
        with pytest.raises(ValueError):
            measure_host_iter_ns(iterations=0)

    def test_host_calibration_clamped(self):
        constants = host_calibrated_constants("i7-2600K")
        base = constants_for_system("i7-2600K")
        assert base.cpu_iter_ns / 10 <= constants.cpu_iter_ns <= base.cpu_iter_ns * 10
        # Only the iteration time changes; platform character is preserved.
        assert constants.gpu_iter_penalty == base.gpu_iter_penalty
