"""Shared fixtures for the test suite.

The heaviest fixtures (exhaustive sweeps, trained tuners) are session-scoped
and use the tiny/reduced parameter spaces so the full suite stays fast while
still exercising the real training pipeline.
"""

from __future__ import annotations

import pytest

from repro.apps.nash import NashEquilibriumApp
from repro.apps.sequence import SequenceComparisonApp
from repro.apps.synthetic import SyntheticApp
from repro.autotuner.exhaustive import ExhaustiveSearch
from repro.autotuner.training import TrainingSetBuilder
from repro.autotuner.tuner import AutoTuner
from repro.core.parameter_space import ParameterSpace
from repro.hardware import platforms


@pytest.fixture(scope="session")
def i3():
    """The single-GPU Table 4 system."""
    return platforms.I3_540


@pytest.fixture(scope="session")
def i7_2600k():
    """The quad-GPU (dual-usable) Table 4 system."""
    return platforms.I7_2600K


@pytest.fixture(scope="session")
def i7_3820():
    """The dual-Tesla Table 4 system."""
    return platforms.I7_3820


@pytest.fixture(scope="session", params=["i3-540", "i7-2600K", "i7-3820"])
def any_system(request):
    """Parametrised fixture running a test on each of the three systems."""
    return platforms.get_system(request.param)


@pytest.fixture()
def small_synthetic():
    """A synthetic problem small enough for functional execution."""
    return SyntheticApp(dim=32, tsize=100, dsize=1).problem()


@pytest.fixture()
def small_nash():
    """A small Nash-equilibrium problem."""
    return NashEquilibriumApp(dim=24).problem()


@pytest.fixture()
def small_sequence():
    """A small Smith-Waterman problem."""
    return SequenceComparisonApp(dim=30, seed=3).problem()


@pytest.fixture(scope="session")
def tiny_space():
    """The tiny parameter space used to keep sweeps fast in tests."""
    return ParameterSpace.tiny()


@pytest.fixture(scope="session")
def reduced_space():
    """The reduced (paper-shaped) parameter space."""
    return ParameterSpace.reduced()


@pytest.fixture(scope="session")
def tiny_results_i7(tiny_space, i7_2600k):
    """Exhaustive-search results of the tiny space on the i7-2600K."""
    return ExhaustiveSearch(i7_2600k, tiny_space).sweep()


@pytest.fixture(scope="session")
def tiny_results_i3(tiny_space, i3):
    """Exhaustive-search results of the tiny space on the i3-540."""
    return ExhaustiveSearch(i3, tiny_space).sweep()


@pytest.fixture(scope="session")
def tiny_training(tiny_results_i7):
    """Training set built from the tiny sweep."""
    return TrainingSetBuilder().build(tiny_results_i7)


@pytest.fixture(scope="session")
def trained_tuner_i7(tiny_space, i7_2600k):
    """A trained AutoTuner on the tiny space (fast, session-scoped)."""
    return AutoTuner(i7_2600k, space=tiny_space).train()


@pytest.fixture(scope="session")
def reduced_tuner_i7(reduced_space, i7_2600k):
    """A trained AutoTuner on the reduced space (used by the evaluation tests)."""
    return AutoTuner(i7_2600k, space=reduced_space).train()


@pytest.fixture(scope="session")
def quick_tuner_i3(tiny_space, i3):
    """A trained AutoTuner for the single-GPU system on the tiny space."""
    return AutoTuner(i3, space=tiny_space).train()
