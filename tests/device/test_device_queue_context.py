"""Tests for the simulated GPU, command queues and contexts."""

import numpy as np
import pytest

from repro.core.exceptions import DeviceError
from repro.device.context import DeviceContext
from repro.device.device import SimulatedGPU
from repro.device.events import EventKind
from repro.device.kernel import KernelSpec, WorkGroupConfig
from repro.hardware.gpu import GPUSpec


def make_device(mem_gb=1.0):
    return SimulatedGPU(0, GPUSpec(name="test-gpu", freq_mhz=1000, compute_units=4, mem_gb=mem_gb))


def double_kernel():
    return KernelSpec(name="double", func=lambda gids, x: np.asarray(x) * 2.0)


class TestSimulatedGPU:
    def test_requires_initialisation(self):
        device = make_device()
        with pytest.raises(DeviceError):
            device.create_buffer("a", (4,))
        device.initialise()
        device.create_buffer("a", (4,))

    def test_initialise_records_event_once(self):
        device = make_device()
        device.initialise()
        device.initialise()
        assert device.log.devices_initialised == 1

    def test_memory_accounting(self):
        device = make_device()
        device.initialise()
        buf = device.create_buffer("a", (1024,))
        assert device.allocated_bytes == buf.nbytes
        device.release_buffer("a")
        assert device.allocated_bytes == 0

    def test_out_of_memory_rejected(self):
        device = make_device(mem_gb=0.001)
        device.initialise()
        with pytest.raises(DeviceError):
            device.create_buffer("big", (10_000_000,))

    def test_duplicate_buffer_name_rejected(self):
        device = make_device()
        device.initialise()
        device.create_buffer("a", (4,))
        with pytest.raises(DeviceError):
            device.create_buffer("a", (4,))

    def test_transfers_record_events(self):
        device = make_device()
        device.initialise()
        device.create_buffer("a", (8,))
        device.write_buffer("a", np.arange(8.0))
        out = device.read_buffer("a")
        assert np.array_equal(out, np.arange(8.0))
        assert device.log.bytes_h2d == 64 and device.log.bytes_d2h == 64

    def test_kernel_launch_functional_and_logged(self):
        device = make_device()
        device.initialise()
        out = device.launch(double_kernel(), 5, {"x": np.arange(5.0)})
        assert np.array_equal(out, np.arange(5.0) * 2)
        assert device.log.kernel_launches == 1

    def test_kernel_output_shape_checked(self):
        device = make_device()
        device.initialise()
        bad = KernelSpec(name="bad", func=lambda gids, **kw: np.zeros(3))
        with pytest.raises(DeviceError):
            device.launch(bad, 5, {})


class TestWorkGroupConfig:
    def test_group_counts(self):
        wg = WorkGroupConfig(group_size=8)
        assert wg.n_groups(0) == 0
        assert wg.n_groups(7) == 1
        assert wg.n_groups(17) == 3

    def test_barriers_only_when_tiled(self):
        assert WorkGroupConfig(group_size=1).barriers(10) == 0
        assert WorkGroupConfig(group_size=4).barriers(10) == 10

    def test_invalid(self):
        with pytest.raises(DeviceError):
            WorkGroupConfig(group_size=0)
        with pytest.raises(DeviceError):
            WorkGroupConfig(group_size=2).n_groups(-1)


class TestCommandQueueAndContext:
    def test_queue_counts_operations(self, i7_3820):
        with DeviceContext(i7_3820, 1) as ctx:
            queue = ctx.queue(0)
            ctx.device(0).create_buffer("a", (4,))
            queue.enqueue_write("a", np.zeros(4))
            queue.enqueue_kernel(double_kernel(), 4, {"x": np.zeros(4)})
            queue.enqueue_read("a")
            queue.finish()
            assert queue.ops_enqueued == 3

    def test_released_queue_rejects_operations(self, i7_3820):
        ctx = DeviceContext(i7_3820, 1)
        ctx.initialise()
        queue = ctx.queue(0)
        ctx.release()
        with pytest.raises(DeviceError):
            queue.finish()

    def test_context_device_count_checked(self, i3):
        with pytest.raises(DeviceError):
            DeviceContext(i3, 2)  # the i3-540 has a single GPU
        with pytest.raises(DeviceError):
            DeviceContext(i3, 0)

    def test_context_shares_one_log(self, i7_3820):
        with DeviceContext(i7_3820, 2) as ctx:
            ctx.device(0).create_buffer("a", (4,))
            ctx.device(1).create_buffer("a", (4,))
            ctx.queue(0).enqueue_write("a", np.zeros(4))
            ctx.queue(1).enqueue_write("a", np.zeros(4))
            assert ctx.log.count(EventKind.H2D) == 2
            assert ctx.log.devices_initialised == 2

    def test_context_release_frees_buffers(self, i7_3820):
        ctx = DeviceContext(i7_3820, 1)
        ctx.initialise()
        ctx.device(0).create_buffer("a", (4,))
        ctx.release()
        assert ctx.device(0).allocated_bytes == 0
        assert ctx.released

    def test_uninitialised_queue_lookup_rejected(self, i7_3820):
        ctx = DeviceContext(i7_3820, 1)
        with pytest.raises(DeviceError):
            ctx.queue(0)
