"""Tests for device buffers and the event log."""

import numpy as np
import pytest

from repro.core.exceptions import DeviceError
from repro.device.buffer import DeviceBuffer
from repro.device.events import DeviceEvent, EventKind, EventLog


class TestDeviceBuffer:
    def test_write_read_roundtrip(self):
        buf = DeviceBuffer("b", (4,))
        nbytes = buf.write(np.arange(4.0))
        assert nbytes == 32
        assert np.array_equal(buf.read(), [0.0, 1.0, 2.0, 3.0])

    def test_read_before_write_rejected(self):
        with pytest.raises(DeviceError):
            DeviceBuffer("b", (4,)).read()

    def test_shape_mismatch_rejected(self):
        buf = DeviceBuffer("b", (4,))
        with pytest.raises(DeviceError):
            buf.write(np.zeros(5))

    def test_release_blocks_further_use(self):
        buf = DeviceBuffer("b", (4,))
        buf.write(np.zeros(4))
        freed = buf.release()
        assert freed == buf.nbytes and buf.released
        with pytest.raises(DeviceError):
            buf.read()
        with pytest.raises(DeviceError):
            buf.write(np.zeros(4))

    def test_view_and_mark_written(self):
        buf = DeviceBuffer("b", (3,))
        buf.view()[:] = 7.0
        buf.mark_written()
        assert np.all(buf.read() == 7.0)

    def test_negative_shape_rejected(self):
        with pytest.raises(DeviceError):
            DeviceBuffer("b", (-1,))


class TestEventLog:
    def test_counts_and_bytes(self):
        log = EventLog()
        log.record(DeviceEvent(EventKind.H2D, device=0, nbytes=100))
        log.record(DeviceEvent(EventKind.H2D, device=1, nbytes=50))
        log.record(DeviceEvent(EventKind.D2H, device=0, nbytes=10))
        log.record(DeviceEvent(EventKind.KERNEL, device=0, work_items=64))
        log.record(DeviceEvent(EventKind.HALO_SWAP, device=0))
        assert log.bytes_h2d == 150 and log.bytes_d2h == 10
        assert log.kernel_launches == 1 and log.halo_swaps == 1
        assert log.count(EventKind.H2D, device=1) == 1
        assert log.bytes_moved(EventKind.H2D, device=0) == 100
        assert len(log) == 5

    def test_summary_keys(self):
        log = EventLog()
        log.record(DeviceEvent(EventKind.DEVICE_INIT, device=0))
        summary = log.summary()
        assert summary["devices_initialised"] == 1
        assert set(summary) >= {"kernel_launches", "halo_swaps", "bytes_h2d", "bytes_d2h"}

    def test_extend_merges(self):
        a, b = EventLog(), EventLog()
        a.record(DeviceEvent(EventKind.KERNEL, device=0))
        b.record(DeviceEvent(EventKind.KERNEL, device=1))
        a.extend(b)
        assert a.kernel_launches == 2

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            DeviceEvent(EventKind.H2D, device=0, nbytes=-1)
        with pytest.raises(ValueError):
            DeviceEvent(EventKind.KERNEL, device=0, work_items=-1)
