"""Tests of the typed :class:`~repro.facade.policy.ExecutionPolicy` redesign.

Covers the policy value itself (validation, override extraction), its
acceptance by :meth:`Session.plan`/:meth:`Session.solve`, the equivalence
and deprecation of the legacy keyword spelling, and the backward-compatible
plan serialisation (``dispatch`` round-trips; legacy plan files without the
field load as ``"barrier"``).
"""

import warnings

import numpy as np
import pytest

from repro import ExecutionPolicy, Session
from repro.core.exceptions import InvalidParameterError, UsageError
from repro.core.params import TunableParams
from repro.facade.plan import ResolvedPlan, load_plan, save_plan
from repro.facade.policy import DISPATCH_MODES


class TestPolicyValue:
    def test_default_policy_is_default(self):
        policy = ExecutionPolicy()
        assert policy.is_default
        assert policy.overrides() == {}

    def test_overrides_lists_only_set_fields(self):
        policy = ExecutionPolicy(backend="serial", workers=2)
        assert policy.overrides() == {"backend": "serial", "workers": 2}
        assert not policy.is_default

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(InvalidParameterError, match="dispatch"):
            ExecutionPolicy(dispatch="bogus")

    def test_dispatch_vocabulary(self):
        assert DISPATCH_MODES == ("barrier", "pipelined")
        for mode in DISPATCH_MODES:
            assert ExecutionPolicy(dispatch=mode).dispatch == mode

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(InvalidParameterError, match="workers"):
            ExecutionPolicy(workers=0)


class TestSessionAcceptance:
    def test_policy_and_legacy_kwargs_resolve_identically(self):
        with Session() as session:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = session.plan(
                    "lcs", 32, backend="serial", tunables=TunableParams()
                )
            modern = session.plan(
                "lcs",
                32,
                policy=ExecutionPolicy(backend="serial", tunables=TunableParams()),
            )
            assert legacy.backend == modern.backend
            assert legacy.tunables == modern.tunables
            assert legacy.workers == modern.workers
            assert legacy.dispatch == modern.dispatch == "barrier"

    def test_legacy_kwargs_warn(self):
        with Session() as session:
            with pytest.warns(DeprecationWarning, match="policy=ExecutionPolicy"):
                session.plan("lcs", 32, backend="serial")

    def test_both_spellings_is_a_usage_error(self):
        with Session() as session:
            with pytest.raises(UsageError, match="not both"):
                session.plan(
                    "lcs", 32, policy=ExecutionPolicy(backend="serial"), workers=2
                )

    def test_policy_dispatch_reaches_plan_and_execution(self):
        with Session(workers=2) as session:
            policy = ExecutionPolicy(
                backend="mp-parallel",
                tunables=TunableParams(cpu_tile=8),
                dispatch="pipelined",
            )
            plan = session.plan("lcs", 32, policy=policy)
            assert plan.dispatch == "pipelined"
            result = session.run(plan)
            assert result.stats["dispatch"] == "pipelined"
            reference = session.run(
                session.plan("lcs", 32, policy=ExecutionPolicy(backend="serial"))
            )
            assert np.array_equal(reference.grid.values, result.grid.values)

    def test_distinct_dispatches_are_distinct_plan_cache_entries(self):
        with Session() as session:
            manual = ExecutionPolicy(backend="mp-parallel", tunables=TunableParams())
            barrier = session.plan("lcs", 32, policy=manual)
            pipelined = session.plan(
                "lcs",
                32,
                policy=ExecutionPolicy(
                    backend="mp-parallel",
                    tunables=TunableParams(),
                    dispatch="pipelined",
                ),
            )
            assert barrier.dispatch == "barrier"
            assert pipelined.dispatch == "pipelined"
            assert session.plan("lcs", 32, policy=manual) is barrier


class TestPlanSerialisation:
    def test_dispatch_round_trips(self, tmp_path):
        with Session() as session:
            plan = session.plan(
                "lcs",
                32,
                policy=ExecutionPolicy(
                    backend="mp-parallel",
                    tunables=TunableParams(cpu_tile=8),
                    dispatch="pipelined",
                ),
            )
            path = save_plan(plan, tmp_path / "plan.json")
            loaded = load_plan(path)
            assert loaded.dispatch == "pipelined"
            assert loaded == plan.with_(problem=None)

    def test_legacy_plan_dict_without_dispatch_loads_as_barrier(self):
        with Session() as session:
            plan = session.plan(
                "lcs", 32, policy=ExecutionPolicy(backend="serial")
            )
        payload = plan.to_dict()
        del payload["dispatch"]  # a plan file persisted before the field
        loaded = ResolvedPlan.from_dict(payload)
        assert loaded.dispatch == "barrier"

    def test_replayed_pipelined_plan_executes(self, tmp_path):
        with Session(workers=2) as session:
            plan = session.plan(
                "lcs",
                24,
                policy=ExecutionPolicy(
                    backend="mp-parallel",
                    tunables=TunableParams(cpu_tile=8),
                    workers=2,
                    dispatch="pipelined",
                ),
            )
            path = save_plan(plan, tmp_path / "plan.json")
        with Session(workers=2) as fresh:
            result = fresh.run(load_plan(path))
            assert result.stats["dispatch"] == "pipelined"

    def test_describe_mentions_nondefault_dispatch_only(self):
        base = dict(
            app="lcs",
            dim=32,
            params=None,
            tunables=TunableParams(),
            backend="mp-parallel",
            system="local",
        )
        from repro.core.params import InputParams

        base["params"] = InputParams(dim=32, tsize=0.5, dsize=0)
        assert "dispatch" not in ResolvedPlan(**base).describe()
        assert "dispatch=pipelined" in ResolvedPlan(
            **base, dispatch="pipelined"
        ).describe()
