"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_systems_command_parses(self):
        args = build_parser().parse_args(["systems"])
        assert args.command == "systems"

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.system == "i7-2600K" and args.app == "synthetic" and args.dim == 1900

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--system", "cray-1"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_systems_lists_all_three(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("i3-540", "i7-2600K", "i7-3820"):
            assert name in out

    def test_sweep_tiny_prints_heatmap(self, capsys):
        assert main(["sweep", "--system", "i3-540", "--space", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5 heatmap" in out and "band" in out

    def test_tune_tiny_prints_configuration(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "synthetic",
                "--dim",
                "256",
                "--tsize",
                "500",
                "--save-model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuned configuration" in out and "speedup" in out
        assert model_path.exists()

        # Reload the saved model instead of retraining.
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "nash-equilibrium",
                "--dim",
                "512",
                "--load-model",
                str(model_path),
            ]
        )
        assert code == 0
        assert "loaded trained models" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_reports_package_version(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestBench:
    def test_bench_parses_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.dim == 256 and args.apps == "all" and args.executors == "all"

    def test_bench_writes_json_and_verifies(self, capsys, tmp_path, monkeypatch):
        import json

        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--dim",
                "24",
                "--apps",
                "synthetic,lcs",
                "--executors",
                "serial,vectorized",
                "--repeats",
                "1",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "vectorized" in printed and "vs serial" in printed
        payload = json.loads(out_path.read_text())
        assert payload["meta"]["dim"] == 24
        records = payload["results"]
        assert len(records) == 4  # 2 apps x 2 executors
        by_pair = {(r["application"], r["executor"]): r for r in records}
        for app_name in ("synthetic", "lcs"):
            assert by_pair[(app_name, "vectorized")]["matches_serial"] is True
            assert by_pair[(app_name, "vectorized")]["speedup_vs_serial"] > 0

    def test_bench_rejects_unknown_names(self):
        with pytest.raises(SystemExit):
            main(["bench", "--apps", "raytracer", "--dim", "16"])
        with pytest.raises(SystemExit):
            main(["bench", "--executors", "quantum", "--dim", "16"])


class TestProfile:
    def test_profile_parses_defaults(self):
        args = build_parser().parse_args(["profile", "--quick"])
        assert args.quick and args.command == "profile"

    def test_profile_then_tune_local_end_to_end(self, capsys, tmp_path):
        profile_path = tmp_path / "profile.json"
        model_path = tmp_path / "tuner.json"
        report_path = tmp_path / "report.txt"
        code = main(
            [
                "profile",
                "--quick",
                "--apps",
                "lcs",
                "--dims",
                "32,48",
                "--repeats",
                "1",
                "--out",
                str(profile_path),
                "--model-out",
                str(model_path),
                "--report-out",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured records" in out and "predicted-vs-measured" in out
        assert profile_path.exists() and model_path.exists() and report_path.exists()

        from repro.autotuner.persistence import load_tuner

        assert load_tuner(model_path).fitted

        code = main(
            [
                "tune",
                "--system",
                "local",
                "--app",
                "lcs",
                "--dim",
                "48",
                "--profile-file",
                str(profile_path),
                "--load-model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuned plan" in out and "measured serial reference" in out

    def test_tune_local_without_artifacts_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="repro-tune profile"):
            main(
                [
                    "tune",
                    "--system",
                    "local",
                    "--app",
                    "lcs",
                    "--dim",
                    "48",
                    "--profile-file",
                    str(tmp_path / "missing.json"),
                    "--load-model",
                    str(tmp_path / "missing_model.json"),
                ]
            )
