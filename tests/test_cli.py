"""Tests for the command-line interface.

Every verb is a thin adapter over :class:`repro.session.Session`; these
tests smoke each verb end to end and pin the central error -> exit-code
mapping of :func:`repro.cli.main` (usage errors 2, missing artifacts 3).
"""

import json

import pytest

from repro.cli import EXIT_ARTIFACT, EXIT_USAGE, build_parser, main


class TestParser:
    def test_systems_command_parses(self):
        args = build_parser().parse_args(["systems"])
        assert args.command == "systems"

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.system == "i7-2600K" and args.app == "synthetic" and args.dim == 1900

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "lcs"])
        assert args.command == "run" and args.tuner == "learned" and args.mode == "functional"

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.kind == "heatmap" and args.system == "i7-2600K"

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--system", "cray-1"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_systems_lists_all_three(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("i3-540", "i7-2600K", "i7-3820"):
            assert name in out

    def test_report_tiny_prints_heatmap(self, capsys):
        assert main(["report", "--system", "i3-540", "--space", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5 heatmap" in out and "band" in out

    def test_sweep_alias_still_works_with_deprecation_note(self, capsys):
        assert main(["sweep", "--system", "i3-540", "--space", "tiny"]) == 0
        captured = capsys.readouterr()
        assert "Figure 5 heatmap" in captured.out
        assert "deprecated" in captured.err

    def test_tune_tiny_prints_configuration(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "synthetic",
                "--dim",
                "256",
                "--tsize",
                "500",
                "--save-model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuned configuration" in out and "speedup" in out
        assert model_path.exists()

        # Reload the saved model instead of retraining.
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "nash-equilibrium",
                "--dim",
                "512",
                "--load-model",
                str(model_path),
            ]
        )
        assert code == 0
        assert "loaded trained models" in capsys.readouterr().out


class TestRun:
    def test_run_executes_and_verifies(self, capsys):
        code = main(
            [
                "run",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "lcs",
                "--dim",
                "32",
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "executed:" in out
        assert "serial verification: OK" in out

    def test_run_plan_out_then_replay(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "run",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "lcs",
                "--dim",
                "32",
                "--plan-out",
                str(plan_path),
            ]
        )
        assert code == 0
        assert plan_path.exists()
        first = capsys.readouterr().out
        assert "wrote plan to" in first

        code = main(
            ["run", "--system", "i3-540", "--replay", str(plan_path), "--verify"]
        )
        assert code == 0
        replayed = capsys.readouterr().out
        assert "replaying plan" in replayed
        assert "serial verification: OK" in replayed

    def test_run_pinned_backend_bypasses_tuner(self, capsys):
        code = main(
            [
                "run",
                "--system",
                "i3-540",
                "--app",
                "lcs",
                "--dim",
                "32",
                "--backend",
                "vectorized",
            ]
        )
        assert code == 0
        assert "via manual" in capsys.readouterr().out

    def test_run_without_app_is_usage_error(self, capsys):
        assert main(["run", "--system", "i3-540"]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_run_replay_missing_plan_is_artifact_error(self, tmp_path, capsys):
        code = main(["run", "--replay", str(tmp_path / "missing_plan.json")])
        assert code == EXIT_ARTIFACT
        assert "error:" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_reports_package_version(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestBench:
    def test_bench_parses_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.dim == 256 and args.apps == "all" and args.executors == "all"

    def test_bench_writes_json_and_verifies(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--dim",
                "24",
                "--apps",
                "synthetic,lcs",
                "--executors",
                "serial,vectorized",
                "--repeats",
                "1",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "vectorized" in printed and "vs serial" in printed
        payload = json.loads(out_path.read_text())
        assert payload["meta"]["dim"] == 24
        records = payload["results"]
        assert len(records) == 4  # 2 apps x 2 executors
        by_pair = {(r["application"], r["executor"]): r for r in records}
        for app_name in ("synthetic", "lcs"):
            assert by_pair[(app_name, "vectorized")]["matches_serial"] is True
            assert by_pair[(app_name, "vectorized")]["speedup_vs_serial"] > 0

    def test_bench_rejects_unknown_names(self, capsys):
        assert main(["bench", "--apps", "raytracer", "--dim", "16"]) == EXIT_USAGE
        assert "unknown applications" in capsys.readouterr().err
        assert main(["bench", "--executors", "quantum", "--dim", "16"]) == EXIT_USAGE
        assert "unknown executors" in capsys.readouterr().err

    def test_bench_rejects_bad_repeats(self, capsys):
        assert main(["bench", "--repeats", "0", "--dim", "16"]) == EXIT_USAGE


class TestProfile:
    def test_profile_parses_defaults(self):
        args = build_parser().parse_args(["profile", "--quick"])
        assert args.quick and args.command == "profile"

    def test_profile_then_tune_local_end_to_end(self, capsys, tmp_path):
        profile_path = tmp_path / "profile.json"
        model_path = tmp_path / "tuner.json"
        report_path = tmp_path / "report.txt"
        code = main(
            [
                "profile",
                "--quick",
                "--apps",
                "lcs",
                "--dims",
                "32,48",
                "--repeats",
                "1",
                "--out",
                str(profile_path),
                "--model-out",
                str(model_path),
                "--report-out",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured records" in out and "predicted-vs-measured" in out
        assert profile_path.exists() and model_path.exists() and report_path.exists()

        from repro.autotuner.persistence import load_tuner

        assert load_tuner(model_path).fitted

        code = main(
            [
                "tune",
                "--system",
                "local",
                "--app",
                "lcs",
                "--dim",
                "48",
                "--profile-file",
                str(profile_path),
                "--load-model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuned plan" in out and "measured serial reference" in out

        # The measured report re-renders from the same artifacts.
        code = main(
            [
                "report",
                "--kind",
                "measured",
                "--profile-file",
                str(profile_path),
                "--model-file",
                str(model_path),
                "--out",
                str(tmp_path / "report2.txt"),
            ]
        )
        assert code == 0
        assert "Measured profile" in capsys.readouterr().out

    def test_tune_local_without_artifacts_maps_to_artifact_exit(self, tmp_path, capsys):
        code = main(
            [
                "tune",
                "--system",
                "local",
                "--app",
                "lcs",
                "--dim",
                "48",
                "--profile-file",
                str(tmp_path / "missing.json"),
                "--load-model",
                str(tmp_path / "missing_model.json"),
            ]
        )
        assert code == EXIT_ARTIFACT
        assert "repro profile" in capsys.readouterr().err


class TestServeVerb:
    def test_serve_parses_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve" and args.port == 8077
        assert args.queue_size == 64 and args.max_batch == 8
        assert args.system == "local" and args.space == "tiny"

    def test_serve_end_to_end_over_http(self, tmp_path):
        """serve binds, answers solve/metrics, drains on POST /shutdown."""
        import json as json_module
        import threading
        import time
        import urllib.request

        ready = tmp_path / "serve.addr"
        metrics_out = tmp_path / "metrics.json"
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    [
                        "serve",
                        "--system", "i3-540",
                        "--space", "tiny",
                        "--port", "0",
                        "--ready-file", str(ready),
                        "--metrics-out", str(metrics_out),
                    ]
                )
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 60
        while time.time() < deadline and not ready.exists():
            time.sleep(0.05)
        assert ready.exists(), "serve never wrote its ready file"
        url = "http://" + ready.read_text().strip()

        request = urllib.request.Request(
            url + "/solve",
            data=json_module.dumps({"app": "lcs", "dim": 48}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json_module.loads(response.read())
        assert body["value"] is not None and len(body["grid_sha256"]) == 64

        shutdown = urllib.request.Request(url + "/shutdown", method="POST")
        with urllib.request.urlopen(shutdown, timeout=10) as response:
            assert response.status == 202
        thread.join(timeout=60)
        assert not thread.is_alive() and codes == [0]
        metrics = json_module.loads(metrics_out.read_text())
        assert metrics["requests"]["completed"] >= 1
        assert metrics["requests"]["in_flight"] == 0


class TestLoadgenVerb:
    def test_loadgen_parses_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen" and args.url is None
        assert args.requests == 60 and args.clients == 4 and args.rate is None

    def test_loadgen_in_process_writes_verified_artifact(self, capsys, tmp_path):
        out = tmp_path / "loadgen.json"
        code = main(
            [
                "loadgen",
                "--system", "i3-540",
                "--space", "tiny",
                "--mix", "lcs:48,edit-distance:40",
                "--requests", "12",
                "--clients", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "0 mismatches" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["results"]["completed"] == 12
        assert payload["results"]["mismatches"] == 0
        assert payload["reference"]["mean_solve_ms"] > 0

    def test_loadgen_bad_mix_is_usage_error(self, capsys):
        code = main(["loadgen", "--mix", "lcs", "--system", "i3-540"])
        assert code == EXIT_USAGE
        assert "app:dim" in capsys.readouterr().err

    def test_loadgen_simulate_mode_requires_no_verify(self, capsys):
        # Simulate results carry no grids, so silent "verification" would be
        # vacuous; the CLI demands the explicit opt-out instead.
        code = main(
            ["loadgen", "--mode", "simulate", "--system", "i3-540", "--space", "tiny"]
        )
        assert code == EXIT_USAGE
        assert "--no-verify" in capsys.readouterr().err
