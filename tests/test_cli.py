"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_systems_command_parses(self):
        args = build_parser().parse_args(["systems"])
        assert args.command == "systems"

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.system == "i7-2600K" and args.app == "synthetic" and args.dim == 1900

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--system", "cray-1"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_systems_lists_all_three(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("i3-540", "i7-2600K", "i7-3820"):
            assert name in out

    def test_sweep_tiny_prints_heatmap(self, capsys):
        assert main(["sweep", "--system", "i3-540", "--space", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5 heatmap" in out and "band" in out

    def test_tune_tiny_prints_configuration(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "synthetic",
                "--dim",
                "256",
                "--tsize",
                "500",
                "--save-model",
                str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tuned configuration" in out and "speedup" in out
        assert model_path.exists()

        # Reload the saved model instead of retraining.
        code = main(
            [
                "tune",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--app",
                "nash-equilibrium",
                "--dim",
                "512",
                "--load-model",
                str(model_path),
            ]
        )
        assert code == 0
        assert "loaded trained models" in capsys.readouterr().out
