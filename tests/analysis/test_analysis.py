"""Tests for the figure-regeneration helpers (heatmap, speedup, aggregate, dispersion)."""

import numpy as np
import pytest

from repro.analysis.aggregate import average_case_table, group_by_dim
from repro.analysis.dispersion import dispersion_stats
from repro.analysis.heatmap import build_heatmap
from repro.analysis.report import render_heatmap, render_table, write_csv
from repro.analysis.speedup import autotune_speedup_summary, scheme_speedup_summary
from repro.core.exceptions import SearchError
from repro.core.params import InputParams


class TestHeatmap:
    def test_band_heatmap_shape_and_values(self, tiny_results_i7, tiny_space):
        hm = build_heatmap(tiny_results_i7, dsize=1, quantity="band")
        assert hm.values.shape == (len(hm.dims), len(hm.tsizes))
        assert set(hm.dims) == set(tiny_space.dims)
        assert np.all(hm.values >= -1)

    def test_value_at_matches_best_record(self, tiny_results_i7):
        hm = build_heatmap(tiny_results_i7, dsize=1, quantity="band")
        params = InputParams(dim=hm.dims[0], tsize=hm.tsizes[0], dsize=1)
        assert hm.value_at(hm.dims[0], hm.tsizes[0]) == tiny_results_i7.best(params).tunables.band

    def test_halo_heatmap(self, tiny_results_i7):
        hm = build_heatmap(tiny_results_i7, dsize=1, quantity="halo")
        assert np.all(hm.values >= -1)

    def test_threshold_helper(self, tiny_results_i7):
        hm = build_heatmap(tiny_results_i7, dsize=1, quantity="band")
        threshold = hm.gpu_threshold_tsize(hm.dims[-1])
        assert threshold is None or threshold in hm.tsizes

    def test_unknown_dsize_and_quantity(self, tiny_results_i7):
        with pytest.raises(SearchError):
            build_heatmap(tiny_results_i7, dsize=3)
        with pytest.raises(SearchError):
            build_heatmap(tiny_results_i7, dsize=1, quantity="speed")

    def test_render_heatmap_text(self, tiny_results_i7):
        hm = build_heatmap(tiny_results_i7, dsize=1)
        text = render_heatmap(hm)
        assert "Figure 5" in text and "dim" in text


class TestSpeedupSummaries:
    def test_scheme_speedups_positive(self, i7_2600k, tiny_results_i7):
        summary = scheme_speedup_summary(i7_2600k, tiny_results_i7)
        assert summary.vs_serial >= 1.0
        assert summary.max_vs_serial >= summary.vs_serial
        assert summary.n_instances == len(tiny_results_i7.instances())

    def test_autotune_speedups(self, reduced_tuner_i7):
        instances = reduced_tuner_i7.results.instances()[:4]
        summary = autotune_speedup_summary(reduced_tuner_i7, instances)
        assert summary.exhaustive_speedup > 0
        assert 0.0 < summary.achieved_fraction <= 1.5

    def test_empty_instance_list_rejected(self, reduced_tuner_i7, i7_2600k, tiny_results_i7):
        with pytest.raises(SearchError):
            autotune_speedup_summary(reduced_tuner_i7, [])
        with pytest.raises(SearchError):
            scheme_speedup_summary(i7_2600k, tiny_results_i7, instances=[])


class TestAverageCase:
    def test_rows_cover_selected_dsize(self, tiny_results_i7):
        rows = average_case_table(tiny_results_i7, dsize=1)
        assert rows
        assert all(r.dsize == 1 for r in rows)
        for row in rows:
            assert row.best_rtime <= row.avg_rtime or np.isnan(row.avg_rtime)
            assert row.n_configurations > 0 or row.n_excluded > 0

    def test_group_by_dim(self, tiny_results_i7):
        rows = average_case_table(tiny_results_i7)
        grouped = group_by_dim(rows)
        assert sum(len(v) for v in grouped.values()) == len(rows)

    def test_rows_sorted(self, tiny_results_i7):
        rows = average_case_table(tiny_results_i7, dsize=1)
        keys = [(r.dim, r.tsize) for r in rows]
        assert keys == sorted(keys)


class TestDispersion:
    def test_quartiles_ordered(self, tiny_results_i7):
        params = tiny_results_i7.instances()[0]
        stats = dispersion_stats(tiny_results_i7, params)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.n_points > 1
        assert stats.density_x.shape == stats.density_y.shape

    def test_best_to_median_gap_in_unit_range(self, tiny_results_i7):
        params = tiny_results_i7.instances()[-1]
        stats = dispersion_stats(tiny_results_i7, params)
        assert 0.0 <= stats.best_to_median_gap <= 1.0

    def test_unknown_instance_rejected(self, tiny_results_i7):
        with pytest.raises(SearchError):
            dispersion_stats(tiny_results_i7, InputParams(dim=9999, tsize=1, dsize=1))


class TestReportHelpers:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="demo")
        assert "demo" in text and "2.500" in text

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out" / "data.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text()
        assert content.splitlines()[0] == "x,y"
        assert "3,4" in content
