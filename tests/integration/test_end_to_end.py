"""End-to-end integration tests: the full Figure 4 workflow.

Train on the synthetic application, deploy on the previously unseen real
applications, check the paper's qualitative claims.
"""

import pytest

from repro.apps.nash import NASH_DSIZE, NASH_TSIZE, NashEquilibriumApp
from repro.apps.sequence import SW_DSIZE, SW_TSIZE
from repro.apps.knapsack import KnapsackApp
from repro.autotuner.persistence import load_tuner, save_tuner
from repro.autotuner.tuner import autotune_and_run
from repro.core.params import InputParams
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor


class TestDeploymentWorkflow:
    def test_nash_tuning_beats_serial_and_tracks_optimum(self, reduced_tuner_i7):
        """Figure 10/11: the tuned Nash configuration is close to the optimum."""
        nash = InputParams(dim=1900, tsize=NASH_TSIZE, dsize=NASH_DSIZE)
        speedup = reduced_tuner_i7.speedup_over_serial(nash)
        efficiency = reduced_tuner_i7.efficiency(nash)
        assert speedup > 2.0
        assert efficiency > 0.6

    def test_smith_waterman_maps_to_cpu_only(self, reduced_tuner_i7):
        """Section 4.2: band = -1 predicted for the fine-grained application."""
        for dim in (1100, 1900, 2700):
            sw = InputParams(dim=dim, tsize=SW_TSIZE, dsize=max(SW_DSIZE, 0) or 1)
            config = reduced_tuner_i7.tune(sw.with_(dsize=1))
            assert config.is_cpu_only

    def test_factory_trained_model_ships_and_reloads(self, reduced_tuner_i7, tmp_path):
        """Train "in the factory", save, reload, and deploy elsewhere."""
        path = save_tuner(reduced_tuner_i7.model, tmp_path / "i7-2600K.json")
        deployed = load_tuner(path)
        nash = {"dim": 1900.0, "tsize": NASH_TSIZE, "dsize": float(NASH_DSIZE)}
        assert deployed.predict(nash) == reduced_tuner_i7.model.predict(nash)

    def test_tuned_functional_execution_matches_serial(self, i3, quick_tuner_i3):
        """The tuned configuration must still compute the correct answer."""
        app = NashEquilibriumApp(dim=22)
        result = autotune_and_run(app, i3, mode="functional", tuner=quick_tuner_i3)
        serial = SerialExecutor(i3).execute(app.problem())
        assert result.matches(serial)

    def test_future_work_knapsack_runs_through_the_framework(self, i7_3820, trained_tuner_i7):
        """The knapsack extension executes under a hybrid configuration."""
        app = KnapsackApp(dim=24, seed=5)
        problem = app.problem()
        config = trained_tuner_i7.tune(problem)
        serial = SerialExecutor(i7_3820).execute(problem)
        hybrid = HybridExecutor(i7_3820).execute(problem, config.clipped(problem.dim))
        assert serial.matches(hybrid)


class TestHeadlineClaims:
    def test_average_autotuned_fraction_of_exhaustive(self, reduced_tuner_i7):
        """The paper reports ~98% of exhaustive-search performance on average.

        The reproduction's tuner must land in the same neighbourhood (>= 85%)
        on its held-out synthetic instances.
        """
        assert reduced_tuner_i7.validation.mean_efficiency >= 0.85

    def test_max_speedup_order_of_magnitude(self, reduced_tuner_i7):
        """Exhaustive best speedups reach O(10x)-O(20x) over serial (paper: up to 20x)."""
        results = reduced_tuner_i7.results
        best = max(results.best_speedup(p) for p in results.instances())
        assert 8.0 <= best <= 40.0

    def test_average_speedup_in_paper_range(self, reduced_tuner_i7):
        """Paper: average optimal speedup of ~7.8x across applications/systems."""
        results = reduced_tuner_i7.results
        import numpy as np

        mean = np.mean([results.best_speedup(p) for p in results.instances()])
        assert 3.0 <= mean <= 20.0
