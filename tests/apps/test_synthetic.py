"""Tests for the synthetic training application."""

import numpy as np
import pytest

from repro.apps.synthetic import MAX_EMULATED_ITERATIONS, SyntheticApp, SyntheticKernel
from repro.core.exceptions import InvalidParameterError
from repro.core.params import InputParams
from repro.runtime.compute import reference_grid


class TestSyntheticKernel:
    def test_metadata_propagates(self):
        kernel = SyntheticKernel(tsize=750, dsize=4)
        assert kernel.tsize == 750 and kernel.dsize == 4

    def test_values_deterministic(self):
        kernel = SyntheticKernel()
        i = np.arange(5)
        out1 = kernel.diagonal(i, i, np.ones(5), np.ones(5), np.ones(5))
        out2 = kernel.diagonal(i, i, np.ones(5), np.ones(5), np.ones(5))
        assert np.array_equal(out1, out2)

    def test_depends_on_neighbours(self):
        kernel = SyntheticKernel()
        i = np.arange(3)
        a = kernel.diagonal(i, i, np.ones(3), np.ones(3), np.ones(3))
        b = kernel.diagonal(i, i, 2 * np.ones(3), np.ones(3), np.ones(3))
        assert not np.array_equal(a, b)

    def test_emulated_work_does_not_change_result(self):
        plain = SyntheticKernel(tsize=500, emulate_work=False)
        busy = SyntheticKernel(tsize=500, emulate_work=True)
        i = np.arange(4)
        args = (i, i, np.ones(4), 2 * np.ones(4), 0.5 * np.ones(4))
        assert np.allclose(plain.diagonal(*args), busy.diagonal(*args))

    def test_emulated_work_capped(self):
        assert MAX_EMULATED_ITERATIONS < 10_000

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SyntheticKernel(tsize=0)
        with pytest.raises(InvalidParameterError):
            SyntheticKernel(dsize=-1)


class TestSyntheticApp:
    def test_problem_reflects_parameters(self):
        app = SyntheticApp(dim=64, tsize=2000, dsize=3)
        params = app.problem().input_params()
        assert params == InputParams(dim=64, tsize=2000, dsize=3)

    def test_from_input_params_roundtrip(self):
        params = InputParams(dim=128, tsize=10, dsize=5)
        app = SyntheticApp.from_input_params(params)
        assert app.problem().input_params() == params

    def test_grid_values_finite(self):
        grid = reference_grid(SyntheticApp(dim=16, tsize=10, dsize=1).problem())
        assert np.all(np.isfinite(grid.values))
        assert grid.values[-1, -1] != 0.0

    def test_describe_mentions_granularity(self):
        assert "tsize=2000" in SyntheticApp(tsize=2000).describe()
