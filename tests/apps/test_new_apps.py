"""Tests for the edit-distance, LCS and matrix-chain applications."""

import numpy as np
import pytest

from repro.apps.editdistance import EditDistanceApp, EditDistanceKernel
from repro.apps.lcs import LCSApp, LCSKernel
from repro.apps.matrixchain import MatrixChainApp, MatrixChainKernel
from repro.core.exceptions import InvalidParameterError
from repro.runtime.compute import reference_grid


def naive_edit_distance(a, b, gap=1.0, mismatch=1.0):
    """Textbook O(n*m) Needleman-Wunsch table over the full sequences."""
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1))
    table[:, 0] = np.arange(n + 1) * gap
    table[0, :] = np.arange(m + 1) * gap
    for r in range(1, n + 1):
        for c in range(1, m + 1):
            sub = 0.0 if a[r - 1] == b[c - 1] else mismatch
            table[r, c] = min(
                table[r - 1, c] + gap,
                table[r, c - 1] + gap,
                table[r - 1, c - 1] + sub,
            )
    return table


def naive_lcs(a, b):
    """Textbook LCS length table."""
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1))
    for r in range(1, n + 1):
        for c in range(1, m + 1):
            if a[r - 1] == b[c - 1]:
                table[r, c] = table[r - 1, c - 1] + 1
            else:
                table[r, c] = max(table[r - 1, c], table[r, c - 1])
    return table


def full_matrix_chain_optimum(p):
    """Classic O(n^3) matrix-chain DP (all split points)."""
    n = len(p) - 1
    m = np.zeros((n, n))
    for length in range(2, n + 1):
        for s in range(n - length + 1):
            e = s + length - 1
            m[s, e] = min(
                m[s, k] + m[k + 1, e] + p[s] * p[k + 1] * p[e + 1]
                for k in range(s, e)
            )
    return float(m[0, n - 1])


class TestEditDistance:
    def test_grid_matches_naive_dp(self):
        app = EditDistanceApp(dim=12, seed=5, similarity=0.6)
        problem = app.problem(12)
        grid = reference_grid(problem)
        kernel = problem.kernel
        table = naive_edit_distance(kernel.seq_a, kernel.seq_b)
        # Grid cell (i, j) holds D[i+1, j+1] of the (n+1)-sized table.
        assert np.allclose(grid.values, table[1:, 1:])

    def test_identical_sequences_have_zero_distance(self):
        seq = np.array([0, 1, 2, 3, 2, 1], dtype=np.int8)
        problem_kernel = EditDistanceKernel(seq, seq)
        from repro.core.pattern import WavefrontProblem

        grid = reference_grid(WavefrontProblem(dim=6, kernel=problem_kernel))
        assert grid.values[5, 5] == 0.0

    def test_distance_is_levenshtein_for_unit_costs(self):
        a = np.array([0, 1, 2, 3], dtype=np.int8)  # ACGT
        b = np.array([0, 2, 3], dtype=np.int8)  # AGT: one deletion
        from repro.core.pattern import WavefrontProblem

        grid = reference_grid(WavefrontProblem(dim=3, kernel=EditDistanceKernel(a, b)))
        # Aligning the 3-prefix of a against b: ACG vs AGT -> distance 2.
        table = naive_edit_distance(a[:3], b)
        assert grid.values[2, 2] == table[3, 3]

    def test_metadata_on_synthetic_scale(self):
        kernel = EditDistanceApp(dim=16, seed=1).make_kernel()
        assert kernel.tsize == 0.5 and kernel.dsize == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            EditDistanceApp(similarity=1.5)
        with pytest.raises(InvalidParameterError):
            EditDistanceKernel(np.array([0, 1], dtype=np.int8), np.array([1], dtype=np.int8), gap=0.0)


class TestLCS:
    def test_grid_matches_naive_dp(self):
        app = LCSApp(dim=14, seed=9, similarity=0.5)
        problem = app.problem(14)
        grid = reference_grid(problem)
        kernel = problem.kernel
        table = naive_lcs(kernel.seq_a, kernel.seq_b)
        assert np.allclose(grid.values, table[1:, 1:])

    def test_identical_sequences_reach_full_length(self):
        seq = np.array([0, 1, 2, 3, 0, 1], dtype=np.int8)
        from repro.core.pattern import WavefrontProblem

        grid = reference_grid(WavefrontProblem(dim=6, kernel=LCSKernel(seq, seq)))
        assert grid.values[5, 5] == 6.0

    def test_lcs_monotone_along_rows_and_columns(self):
        problem = LCSApp(dim=10, seed=2).problem(10)
        grid = reference_grid(problem)
        assert np.all(np.diff(grid.values, axis=0) >= 0)
        assert np.all(np.diff(grid.values, axis=1) >= 0)

    def test_metadata_on_synthetic_scale(self):
        kernel = LCSApp(dim=16, seed=1).make_kernel()
        assert kernel.tsize == 0.5 and kernel.dsize == 0


class TestMatrixChain:
    def test_corner_matches_direct_edge_split_loop(self):
        app = MatrixChainApp(dim=24, seed=11)
        problem = app.problem(24)
        grid = reference_grid(problem)
        kernel = problem.kernel
        assert grid.values[23, 23] == pytest.approx(kernel.optimum_edge_split())

    def test_edge_split_is_upper_bound_on_full_dp(self):
        app = MatrixChainApp(dim=10, seed=3)
        kernel = app.make_kernel()
        problem = app.problem(10)
        grid = reference_grid(problem)
        full = full_matrix_chain_optimum(kernel.dims)
        assert grid.values[9, 9] >= full - 1e-9

    def test_exact_for_monotone_dimension_chains(self):
        # For monotonically non-increasing dimensions the greedy edge split
        # is optimal, so the restricted DP equals the full DP.
        dims = np.array([32, 16, 8, 4, 2, 1], dtype=float)
        kernel = MatrixChainKernel(dims)
        from repro.core.pattern import WavefrontProblem

        n = kernel.n
        grid = reference_grid(WavefrontProblem(dim=n, kernel=kernel))
        assert grid.values[n - 1, n - 1] == pytest.approx(
            full_matrix_chain_optimum(dims)
        )

    def test_base_diagonals_are_zero(self):
        problem = MatrixChainApp(dim=8, seed=1).problem(8)
        grid = reference_grid(problem)
        n = 8
        for i in range(n):
            for j in range(n):
                if j <= (n - 1 - i):  # e <= s: single matrices and non-intervals
                    assert grid.values[i, j] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            MatrixChainKernel(np.array([5.0]))
        with pytest.raises(InvalidParameterError):
            MatrixChainKernel(np.array([4.0, -1.0, 3.0]))
        with pytest.raises(InvalidParameterError):
            MatrixChainApp(max_dim_size=0)

    def test_metadata_on_synthetic_scale(self):
        kernel = MatrixChainApp(dim=16, seed=1).make_kernel()
        assert kernel.tsize == 1.0 and kernel.dsize == 0
