"""Tests for the Nash, Smith-Waterman and knapsack applications."""

import numpy as np
import pytest

from repro.apps.knapsack import KnapsackApp, KnapsackKernel
from repro.apps.nash import NASH_DSIZE, NASH_TSIZE, NashEquilibriumApp, NashKernel
from repro.apps.registry import APPLICATIONS, available_applications, get_application
from repro.apps.sequence import (
    SW_DSIZE,
    SW_TSIZE,
    SequenceComparisonApp,
    SmithWatermanKernel,
    decode_dna,
    mutate,
    random_dna,
)
from repro.core.exceptions import InvalidParameterError
from repro.runtime.compute import reference_grid


class TestNash:
    def test_synthetic_scale_mapping(self):
        """Section 3.2.1: one Nash iteration ~ tsize=750, dsize=4."""
        kernel = NashKernel()
        assert kernel.tsize == NASH_TSIZE == 750.0
        assert kernel.dsize == NASH_DSIZE == 4

    def test_values_bounded(self):
        grid = reference_grid(NashEquilibriumApp(dim=20).problem())
        assert np.all(np.isfinite(grid.values))
        assert np.all(np.abs(grid.values) < 10.0)

    def test_inner_iterations_change_result(self):
        shallow = reference_grid(NashEquilibriumApp(dim=12, inner_iterations=1).problem())
        deep = reference_grid(NashEquilibriumApp(dim=12, inner_iterations=20).problem())
        assert not np.allclose(shallow.values, deep.values)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            NashKernel(inner_iterations=0)
        with pytest.raises(InvalidParameterError):
            NashKernel(damping=0.0)


class TestSmithWaterman:
    def test_synthetic_scale_mapping(self):
        """Section 3.2.1: sequence comparison ~ tsize=0.5, dsize=0."""
        kernel = SequenceComparisonApp(dim=16, seed=1).make_kernel()
        assert kernel.tsize == SW_TSIZE == 0.5
        assert kernel.dsize == SW_DSIZE == 0

    def test_identical_sequences_score_matches_length(self):
        seq = random_dna(20, seed=5)
        kernel = SmithWatermanKernel(seq, seq, match=2.0, mismatch=-1.0, gap=1.0)
        from repro.core.pattern import WavefrontProblem

        grid = reference_grid(WavefrontProblem(dim=20, kernel=kernel))
        # Perfect self-alignment along the main diagonal: score 2 per base.
        assert grid.values[-1, -1] == pytest.approx(2.0 * 20)

    def test_scores_non_negative(self):
        grid = reference_grid(SequenceComparisonApp(dim=24, similarity=0.3, seed=2).problem())
        assert np.all(grid.values >= 0.0)

    def test_more_similar_sequences_score_higher(self):
        close = reference_grid(SequenceComparisonApp(dim=32, similarity=0.95, seed=7).problem())
        far = reference_grid(SequenceComparisonApp(dim=32, similarity=0.05, seed=7).problem())
        assert close.values.max() > far.values.max()

    def test_sequence_helpers(self):
        seq = random_dna(50, seed=1)
        assert set(np.unique(seq)).issubset({0, 1, 2, 3})
        mutated = mutate(seq, rate=1.0, seed=2)
        assert mutated.shape == seq.shape
        assert len(decode_dna(seq)) == 50
        with pytest.raises(InvalidParameterError):
            random_dna(0)
        with pytest.raises(InvalidParameterError):
            mutate(seq, rate=1.5)


class TestKnapsack:
    def test_dp_matches_greedy_optimum(self):
        app = KnapsackApp(dim=30, seed=11)
        kernel = app.make_kernel()
        grid = reference_grid(app.problem())
        # Row i, column w: best value using items 0..i with capacity w.
        n = 29
        assert grid.values[n, n] == pytest.approx(kernel.optimum(capacity=n, n_items=n + 1))

    def test_monotone_in_capacity_and_items(self):
        grid = reference_grid(KnapsackApp(dim=20, seed=3).problem())
        assert np.all(np.diff(grid.values, axis=1) >= -1e-12)  # more capacity never hurts
        assert np.all(np.diff(grid.values, axis=0) >= -1e-12)  # more items never hurt

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            KnapsackKernel(np.array([-1.0, 2.0]))
        with pytest.raises(InvalidParameterError):
            KnapsackApp(max_value=0)


class TestRegistry:
    def test_all_applications_registered(self):
        assert set(available_applications()) == {
            "synthetic",
            "nash-equilibrium",
            "sequence-comparison",
            "knapsack",
            "knapsack-ev",
            "edit-distance",
            "lcs",
            "matrix-chain",
            "viterbi",
            "stochastic-path",
        }

    def test_get_application_with_kwargs(self):
        app = get_application("synthetic", dim=64, tsize=10, dsize=1)
        assert app.problem().dim == 64

    def test_unknown_application(self):
        with pytest.raises(KeyError):
            get_application("raytracer")

    def test_factories_produce_working_problems(self):
        for name in APPLICATIONS:
            app = get_application(name)
            app.default_dim = 12
            grid = reference_grid(app.problem(12))
            assert np.all(np.isfinite(grid.values))
