"""Tests for the linear SVM gate and cross-validation helpers."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError, ModelNotFittedError
from repro.ml.crossval import (
    cross_val_score,
    kfold_indices,
    meets_accuracy_threshold,
    train_test_split,
)
from repro.ml.dataset import Dataset
from repro.ml.svm import LinearSVM
from repro.ml.tree.reptree import REPTree
from repro.ml.metrics import accuracy


def separable_dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0.2).astype(float)
    return Dataset(X=X, y=y, feature_names=["f0", "f1"], target_name="label")


class TestLinearSVM:
    def test_separable_problem_learned(self):
        ds = separable_dataset()
        svm = LinearSVM(epochs=100, seed=1).fit(ds)
        preds = svm.predict_bool(ds.X).astype(float)
        assert accuracy(ds.y, preds) > 0.95

    def test_single_class_degenerate_case(self):
        ds = Dataset(
            X=np.random.default_rng(0).normal(size=(10, 2)),
            y=np.ones(10),
            feature_names=["a", "b"],
        )
        svm = LinearSVM().fit(ds)
        assert np.all(svm.predict_bool(ds.X))

    def test_non_binary_targets_rejected(self):
        ds = Dataset(X=np.zeros((4, 1)), y=np.array([0.0, 1.0, 2.0, 3.0]), feature_names=["a"])
        with pytest.raises(InvalidParameterError):
            LinearSVM().fit(ds)

    def test_unfitted_rejected(self):
        with pytest.raises(ModelNotFittedError):
            LinearSVM().decision_function(np.zeros(2))

    def test_decision_function_single_row(self):
        ds = separable_dataset(50)
        svm = LinearSVM(epochs=50).fit(ds)
        score = svm.decision_function(ds.X[0])
        assert np.isscalar(score) or np.ndim(score) == 0

    def test_serialisation_roundtrip(self):
        ds = separable_dataset(80)
        svm = LinearSVM(epochs=50, seed=2).fit(ds)
        clone = LinearSVM.from_dict(svm.to_dict())
        assert np.array_equal(clone.predict_bool(ds.X), svm.predict_bool(ds.X))


class TestCrossValidation:
    def test_kfold_partitions_everything(self):
        folds = kfold_indices(23, 5, seed=1)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))
        for train, test in folds:
            assert set(train).isdisjoint(set(test))

    def test_kfold_validation(self):
        with pytest.raises(InvalidParameterError):
            kfold_indices(10, 1)
        with pytest.raises(InvalidParameterError):
            kfold_indices(3, 5)

    def test_train_test_split_sizes(self):
        ds = separable_dataset(40)
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert train.n_samples + test.n_samples == 40
        assert test.n_samples in (10, 11)

    def test_cross_val_score_high_for_learnable_problem(self):
        ds = separable_dataset(150)
        scores = cross_val_score(lambda: REPTree(min_leaf=2), ds, k=4, metric=accuracy, seed=0)
        assert len(scores) == 4
        assert np.mean(scores) > 0.85

    def test_accuracy_threshold_rule(self):
        assert meets_accuracy_threshold([0.95, 0.92, 0.99])
        assert not meets_accuracy_threshold([0.5, 0.6])
        with pytest.raises(InvalidParameterError):
            meets_accuracy_threshold([])
