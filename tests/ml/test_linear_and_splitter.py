"""Tests for the OLS linear model and the split-search helper."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError, ModelNotFittedError
from repro.ml.tree.linear_model import LinearModel
from repro.ml.tree.splitter import best_split


class TestLinearModel:
    def test_recovers_exact_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        model = LinearModel().fit(X, y, feature_names=["a", "b", "c"])
        assert np.allclose(model.coef_, [2.0, -1.0, 0.5], atol=1e-6)
        assert model.intercept_ == pytest.approx(4.0, abs=1e-6)
        assert np.allclose(model.predict(X), y, atol=1e-6)

    def test_single_sample_constant_model(self):
        model = LinearModel().fit(np.array([[1.0, 2.0]]), np.array([7.0]))
        assert model.predict(np.array([5.0, 5.0])) == pytest.approx(7.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelNotFittedError):
            LinearModel().predict(np.zeros((2, 2)))

    def test_feature_count_checked(self):
        model = LinearModel().fit(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(InvalidParameterError):
            model.predict(np.zeros((3, 4)))

    def test_drop_small_terms_removes_irrelevant_feature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        y = 3.0 * X[:, 0] + 1.0  # features 1 and 2 are irrelevant
        model = LinearModel().fit(X, y)
        model.drop_small_terms(X, y)
        assert abs(model.coef_[0]) > 1.0
        assert abs(model.coef_[1]) < 1e-8 and abs(model.coef_[2]) < 1e-8

    def test_equation_text(self):
        model = LinearModel().fit(np.array([[1.0], [2.0], [3.0]]), np.array([2.0, 4.0, 6.0]), ["x"])
        eq = model.equation()
        assert "x" in eq

    def test_serialisation_roundtrip(self):
        X, y = np.random.default_rng(2).normal(size=(20, 2)), np.arange(20.0)
        model = LinearModel().fit(X, y, ["a", "b"])
        clone = LinearModel.from_dict(model.to_dict())
        assert np.allclose(clone.predict(X), model.predict(X))


class TestBestSplit:
    def test_finds_obvious_threshold(self):
        X = np.array([[x] for x in range(20)], dtype=float)
        y = np.array([0.0] * 10 + [10.0] * 10)
        split = best_split(X, y, min_leaf=2)
        assert split is not None
        assert split.feature == 0
        assert 9.0 <= split.threshold <= 10.0
        assert split.n_left == 10 and split.n_right == 10

    def test_no_split_for_constant_target(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        assert best_split(X, np.zeros(20)) is None

    def test_no_split_when_too_few_samples(self):
        X = np.arange(3, dtype=float).reshape(-1, 1)
        assert best_split(X, np.array([0.0, 1.0, 2.0]), min_leaf=2) is None

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(3)
        noise = rng.normal(size=50)
        informative = np.concatenate([np.zeros(25), np.ones(25)])
        X = np.column_stack([noise, informative])
        y = informative * 5.0
        split = best_split(X, y, min_leaf=3)
        assert split.feature == 1

    def test_criterion_validation(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        with pytest.raises(InvalidParameterError):
            best_split(X, np.arange(10.0), criterion="gini")
        with pytest.raises(InvalidParameterError):
            best_split(X, np.arange(10.0), min_leaf=0)

    def test_variance_and_sdr_agree_on_simple_case(self):
        X = np.array([[x] for x in range(12)], dtype=float)
        y = np.array([0.0] * 6 + [1.0] * 6)
        s1 = best_split(X, y, criterion="sdr")
        s2 = best_split(X, y, criterion="variance")
        assert s1.threshold == s2.threshold
