"""Tests for datasets and evaluation metrics."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError
from repro.ml.dataset import Dataset
from repro.ml.metrics import accuracy, mae, mse, r2_score, rmse, within_tolerance


def toy_dataset(n=20, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
    return Dataset(X=X, y=y, feature_names=["a", "b", "c"], target_name="t")


class TestDataset:
    def test_from_records(self):
        records = [{"dim": 1, "tsize": 2, "band": 3}, {"dim": 4, "tsize": 5, "band": 6}]
        ds = Dataset.from_records(records, features=["dim", "tsize"], target="band")
        assert ds.n_samples == 2 and ds.n_features == 2
        assert np.array_equal(ds.y, [3.0, 6.0])

    def test_from_records_missing_key(self):
        with pytest.raises(InvalidParameterError):
            Dataset.from_records([{"a": 1}], features=["a"], target="missing")

    def test_column_and_feature_index(self):
        ds = toy_dataset()
        assert np.array_equal(ds.column("b"), ds.X[:, 1])
        with pytest.raises(InvalidParameterError):
            ds.feature_index("zzz")

    def test_subset_and_with_target(self):
        ds = toy_dataset()
        sub = ds.subset(np.arange(5))
        assert sub.n_samples == 5
        retargeted = ds.with_target(np.zeros(ds.n_samples), "zeros")
        assert retargeted.target_name == "zeros" and np.all(retargeted.y == 0)

    def test_split_fractions(self):
        ds = toy_dataset(40)
        train, test = ds.split(0.75, seed=1)
        assert train.n_samples + test.n_samples == 40
        assert abs(train.n_samples - 30) <= 1

    def test_shuffle_deterministic(self):
        ds = toy_dataset(15)
        assert np.array_equal(ds.shuffled(seed=3).y, ds.shuffled(seed=3).y)

    def test_standardisation_handles_constant_columns(self):
        X = np.ones((10, 2))
        ds = Dataset(X=X, y=np.zeros(10), feature_names=["a", "b"])
        mean, std = ds.standardisation()
        assert np.all(std == 1.0)

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            Dataset(X=np.zeros((3, 2)), y=np.zeros(4), feature_names=["a", "b"])
        with pytest.raises(InvalidParameterError):
            Dataset(X=np.zeros((3, 2)), y=np.zeros(3), feature_names=["a"])


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mse(y, y) == 0.0 and rmse(y, y) == 0.0 and mae(y, y) == 0.0
        assert r2_score(y, y) == 1.0
        assert accuracy(y, y) == 1.0
        assert within_tolerance(y, y) == 1.0

    def test_known_errors(self):
        y_true = np.array([0.0, 0.0, 0.0, 0.0])
        y_pred = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(y_true, y_pred) == 1.0
        assert mae(y_true, y_pred) == 1.0

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 1.0]) == 0.0

    def test_within_tolerance_mixed(self):
        y_true = np.array([100.0, 10.0, -1.0])
        y_pred = np.array([105.0, 25.0, -1.5])
        # 5% error ok, 150% error not ok, absolute 0.5 error ok (abs tol 1.0)
        assert within_tolerance(y_true, y_pred) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            mse([1.0], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            accuracy([], [])
