"""Tests for the REP tree and the M5P model tree."""

import numpy as np
import pytest

from repro.core.exceptions import ModelNotFittedError
from repro.ml.dataset import Dataset
from repro.ml.metrics import r2_score, accuracy
from repro.ml.tree.m5p import M5ModelTree
from repro.ml.tree.reptree import REPTree


def piecewise_dataset(n=400, seed=0):
    """Target is piecewise-linear in x0 with a threshold at 0.5 on x1."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = np.where(X[:, 1] <= 0.5, 2.0 * X[:, 0], 10.0 + 5.0 * X[:, 0])
    return Dataset(X=X, y=y, feature_names=["x0", "x1"], target_name="y")


def binary_dataset(n=300, seed=1):
    """Binary target: 1 when x0 is above a threshold."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1000, size=(n, 2))
    y = (X[:, 0] > 400).astype(float)
    return Dataset(X=X, y=y, feature_names=["tsize", "dim"], target_name="use_gpu")


class TestREPTree:
    def test_learns_binary_rule(self):
        ds = binary_dataset()
        tree = REPTree(min_leaf=2).fit(ds)
        preds = tree.predict_binary(ds.X)
        assert accuracy(ds.y, preds) > 0.95

    def test_pruning_reduces_or_keeps_leaves(self):
        ds = piecewise_dataset()
        pruned = REPTree(min_leaf=2, prune=True, seed=0).fit(ds)
        unpruned = REPTree(min_leaf=2, prune=False).fit(ds)
        assert pruned.n_leaves <= unpruned.n_leaves

    def test_depth_limit_respected(self):
        tree = REPTree(max_depth=2, prune=False).fit(piecewise_dataset())
        assert tree.depth <= 2

    def test_regression_quality(self):
        ds = piecewise_dataset()
        tree = REPTree(min_leaf=3).fit(ds)
        assert r2_score(ds.y, tree.predict(ds.X)) > 0.8

    def test_single_row_prediction(self):
        ds = binary_dataset()
        tree = REPTree().fit(ds)
        value = tree.predict(ds.X[0])
        assert np.isscalar(value) or value.shape == ()

    def test_unfitted_rejected(self):
        with pytest.raises(ModelNotFittedError):
            REPTree().predict(np.zeros((1, 2)))

    def test_to_text_and_roundtrip(self):
        ds = binary_dataset()
        tree = REPTree(min_leaf=5).fit(ds)
        text = tree.to_text()
        assert "tsize" in text or "->" in text
        clone = REPTree.from_dict(tree.to_dict())
        assert np.allclose(clone.predict(ds.X), tree.predict(ds.X))


class TestM5ModelTree:
    def test_beats_single_linear_model_on_piecewise_data(self):
        ds = piecewise_dataset()
        from repro.ml.tree.linear_model import LinearModel

        lm = LinearModel().fit(ds.X, ds.y)
        tree = M5ModelTree(min_leaf=4).fit(ds)
        lm_r2 = r2_score(ds.y, lm.predict(ds.X))
        tree_r2 = r2_score(ds.y, tree.predict(ds.X))
        assert tree_r2 > lm_r2
        assert tree_r2 > 0.95

    def test_fits_pure_linear_data_with_few_leaves(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(300, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0
        tree = M5ModelTree().fit(Dataset(X=X, y=y, feature_names=["a", "b"]))
        # Pruning should collapse most of the tree: a single linear model is enough.
        assert tree.n_leaves <= 3
        assert r2_score(y, tree.predict(X)) > 0.999

    def test_smoothing_changes_predictions(self):
        ds = piecewise_dataset()
        smooth = M5ModelTree(smoothing_k=15.0).fit(ds)
        raw = M5ModelTree(smoothing_k=0.0).fit(ds)
        assert not np.allclose(smooth.predict(ds.X[:20]), raw.predict(ds.X[:20]))

    def test_to_text_contains_linear_models(self):
        tree = M5ModelTree(min_leaf=4).fit(piecewise_dataset())
        text = tree.to_text()
        assert "LM1" in text
        assert "x0" in text or "x1" in text

    def test_feature_count_checked(self):
        tree = M5ModelTree().fit(piecewise_dataset())
        with pytest.raises(Exception):
            tree.predict(np.zeros((2, 5)))

    def test_serialisation_roundtrip(self):
        ds = piecewise_dataset(150)
        tree = M5ModelTree(min_leaf=4).fit(ds)
        clone = M5ModelTree.from_dict(tree.to_dict())
        assert np.allclose(clone.predict(ds.X), tree.predict(ds.X))

    def test_unfitted_rejected(self):
        with pytest.raises(ModelNotFittedError):
            M5ModelTree().predict(np.zeros((1, 2)))
