"""The docs coverage check, wired into the test suite.

CI also runs ``scripts/check_docs.py`` directly; this test keeps the
guarantees local: every public class in ``repro.apps`` and ``repro.runtime``
appears in ``docs/architecture.md``, every public class of
``repro.autotuner.measured`` appears in ``docs/measured-tuning.md``, and
every public module/class/function under ``src/repro`` has a docstring.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_architecture_doc_covers_all_public_classes():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    assert check_docs.main() == 0
