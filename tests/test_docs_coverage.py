"""The docs-coverage and API-surface checks, wired into the test suite.

CI also runs ``scripts/check_docs.py`` and ``scripts/check_api.py``
directly; these tests keep the guarantees local: every public class in
``repro.apps`` and ``repro.runtime`` appears in ``docs/architecture.md``,
every public class of ``repro.autotuner.measured`` appears in
``docs/measured-tuning.md``, every public module/class/function under
``src/repro`` has a docstring — and the exported public API surface
matches the reviewed snapshot in ``scripts/api_surface.json``.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_script(name: str):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        return __import__(name)
    finally:
        sys.path.pop(0)


def test_architecture_doc_covers_all_public_classes():
    assert _load_script("check_docs").main() == 0


def test_public_api_surface_matches_reviewed_snapshot():
    assert _load_script("check_api").main([]) == 0
