"""Tests for the AutoTuner facade, baselines, random search and persistence."""

import pytest

from repro.apps.nash import NASH_DSIZE, NASH_TSIZE, NashEquilibriumApp
from repro.apps.synthetic import SyntheticApp
from repro.autotuner.baselines import simple_scheme_times
from repro.autotuner.persistence import load_tuner, save_tuner
from repro.autotuner.random_search import RandomSearch
from repro.autotuner.tuner import AutoTuner, autotune_and_run
from repro.core.exceptions import ModelNotFittedError, SearchError
from repro.core.params import InputParams
from repro.hardware import platforms


class TestAutoTuner:
    def test_training_populates_everything(self, trained_tuner_i7):
        assert trained_tuner_i7.trained
        assert len(trained_tuner_i7.results) > 0
        assert len(trained_tuner_i7.training) > 0
        assert trained_tuner_i7.validation.instances > 0

    def test_untrained_tune_rejected(self, i7_2600k, tiny_space):
        tuner = AutoTuner(i7_2600k, space=tiny_space)
        with pytest.raises(ModelNotFittedError):
            tuner.tune(InputParams(dim=64, tsize=10, dsize=1))

    def test_tune_accepts_problem_app_or_params(self, trained_tuner_i7):
        params = InputParams(dim=96, tsize=500, dsize=1)
        app = SyntheticApp(dim=96, tsize=500, dsize=1)
        configs = {
            trained_tuner_i7.tune(params),
            trained_tuner_i7.tune(app),
            trained_tuner_i7.tune(app.problem()),
        }
        assert len(configs) == 1

    def test_tune_rejects_unknown_target(self, trained_tuner_i7):
        with pytest.raises(SearchError):
            trained_tuner_i7.tune("not a problem")

    def test_validation_efficiency_reasonable(self, reduced_tuner_i7):
        """The learned tuner should reach a high fraction of the search optimum."""
        assert reduced_tuner_i7.validation.mean_efficiency > 0.85

    def test_speedup_over_serial_positive(self, reduced_tuner_i7):
        nash = InputParams(dim=1900, tsize=NASH_TSIZE, dsize=NASH_DSIZE)
        assert reduced_tuner_i7.speedup_over_serial(nash) > 1.0

    def test_efficiency_of_unseen_instance(self, reduced_tuner_i7):
        unseen = InputParams(dim=1500, tsize=900, dsize=1)
        eff = reduced_tuner_i7.efficiency(unseen)
        assert 0.0 < eff < 1.6  # may exceed 1.0 slightly (super-optimal)


class TestBaselines:
    def test_scheme_ordering_coarse_grain(self, i3):
        schemes = simple_scheme_times(i3, InputParams(dim=1900, tsize=4000, dsize=1))
        assert schemes.serial > schemes.cpu_parallel
        assert schemes.gpu_only < schemes.serial
        speedups = schemes.speedups_of(schemes.cpu_parallel / 2)
        assert speedups["vs_cpu_parallel"] == pytest.approx(2.0)

    def test_cpu_only_system_has_infinite_gpu_scheme(self, i7_2600k):
        cpu_only = platforms.cpu_only_variant(i7_2600k)
        schemes = simple_scheme_times(cpu_only, InputParams(dim=500, tsize=100, dsize=1))
        assert schemes.gpu_only == float("inf")


class TestRandomSearch:
    def test_never_better_than_exhaustive(self, i7_2600k, tiny_space, tiny_results_i7):
        params = tiny_results_i7.instances()[0]
        rs = RandomSearch(i7_2600k, tiny_space, seed=1).run(params, budget=10)
        assert rs.rtime >= tiny_results_i7.best(params).rtime - 1e-12
        assert rs.evaluations <= 10

    def test_bigger_budget_no_worse(self, i7_2600k, tiny_space):
        params = InputParams(dim=128, tsize=500, dsize=1)
        small = RandomSearch(i7_2600k, tiny_space, seed=3).run(params, budget=3)
        large = RandomSearch(i7_2600k, tiny_space, seed=3).run(params, budget=30)
        assert large.rtime <= small.rtime

    def test_invalid_budget(self, i7_2600k, tiny_space):
        with pytest.raises(SearchError):
            RandomSearch(i7_2600k, tiny_space).run(InputParams(dim=64, tsize=10, dsize=1), budget=0)


class TestPersistence:
    def test_save_load_roundtrip(self, trained_tuner_i7, tmp_path):
        path = save_tuner(trained_tuner_i7.model, tmp_path / "tuner.json")
        clone = load_tuner(path)
        features = {"dim": 700, "tsize": 750, "dsize": 4}
        assert clone.predict(features) == trained_tuner_i7.model.predict(features)

    def test_bad_payload_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"something\": 1}", encoding="utf-8")
        with pytest.raises(SearchError):
            load_tuner(bad)


class TestAutotuneAndRun:
    def test_one_call_simulate(self, i3, quick_tuner_i3):
        app = SyntheticApp(dim=256, tsize=750, dsize=1)
        result = autotune_and_run(app, i3, mode="simulate", tuner=quick_tuner_i3)
        assert result.rtime > 0 and result.grid is None

    def test_one_call_functional_small(self, i3, quick_tuner_i3):
        app = NashEquilibriumApp(dim=20)
        result = autotune_and_run(app, i3, mode="functional", tuner=quick_tuner_i3)
        assert result.grid is not None and result.wall_time > 0
