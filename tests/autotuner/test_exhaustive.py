"""Tests for the exhaustive search and its result container."""

import pytest

from repro.autotuner.exhaustive import ExhaustiveSearch, RUNTIME_THRESHOLD_S
from repro.autotuner.search_space import SearchSpace
from repro.core.exceptions import SearchError
from repro.core.parameter_space import ParameterSpace
from repro.core.params import InputParams, TunableParams


class TestSearchSpace:
    def test_single_gpu_system_has_no_dual_configs(self, tiny_space, i3):
        space = SearchSpace(tiny_space, i3)
        instance = InputParams(dim=64, tsize=10, dsize=1)
        assert all(c.gpu_count <= 1 for c in space.configurations(instance))
        assert space.max_gpus == 1

    def test_dual_gpu_system_explores_halo(self, tiny_space, i7_3820):
        space = SearchSpace(tiny_space, i7_3820)
        instance = InputParams(dim=64, tsize=10, dsize=1)
        assert any(c.gpu_count == 2 for c in space.configurations(instance))

    def test_configurations_unique(self, tiny_space, i7_2600k):
        space = SearchSpace(tiny_space, i7_2600k)
        configs = space.configurations(InputParams(dim=64, tsize=10, dsize=1))
        assert len(configs) == len(set(configs))

    def test_size_estimate_and_describe(self, tiny_space, i7_2600k):
        space = SearchSpace(tiny_space, i7_2600k)
        assert space.size_estimate() > 0
        info = space.describe()
        assert info["system"] == "i7-2600K" and info["max_gpus"] == 2


class TestExhaustiveSearch:
    def test_sweep_covers_all_instances(self, tiny_results_i7, tiny_space):
        assert len(tiny_results_i7.instances()) == tiny_space.n_instances
        assert len(tiny_results_i7) > tiny_space.n_instances  # many configs each

    def test_serial_baselines_recorded(self, tiny_results_i7):
        for params in tiny_results_i7.instances():
            assert tiny_results_i7.serial_time(params) > 0

    def test_best_is_minimum(self, tiny_results_i7):
        params = tiny_results_i7.instances()[0]
        best = tiny_results_i7.best(params)
        rtimes = [r.rtime for r in tiny_results_i7.records_for(params)]
        assert best.rtime == min(rtimes)

    def test_best_n_sorted(self, tiny_results_i7):
        params = tiny_results_i7.instances()[0]
        top = tiny_results_i7.best_n(params, 5)
        assert len(top) == 5
        assert all(a.rtime <= b.rtime for a, b in zip(top, top[1:]))

    def test_average_and_std(self, tiny_results_i7):
        params = tiny_results_i7.instances()[0]
        avg = tiny_results_i7.average_rtime(params)
        best = tiny_results_i7.best(params).rtime
        assert avg >= best
        assert tiny_results_i7.std_rtime(params) >= 0

    def test_best_speedup_at_least_cpu_parallel(self, tiny_results_i7):
        params = tiny_results_i7.instances()[-1]
        assert tiny_results_i7.best_speedup(params) > 1.0

    def test_threshold_flagging(self, i7_2600k, tiny_space):
        search = ExhaustiveSearch(i7_2600k, tiny_space, threshold_s=1e-9)
        record = search.evaluate(
            InputParams(dim=64, tsize=100, dsize=1), TunableParams(cpu_tile=4)
        )
        assert record.exceeded_threshold
        assert ExhaustiveSearch(i7_2600k, tiny_space).threshold_s == RUNTIME_THRESHOLD_S

    def test_unknown_instance_queries_raise(self, tiny_results_i7):
        ghost = InputParams(dim=77, tsize=3, dsize=1)
        with pytest.raises(SearchError):
            tiny_results_i7.best(ghost)
        with pytest.raises(SearchError):
            tiny_results_i7.serial_time(ghost)

    def test_to_records_flat_keys(self, tiny_results_i7):
        records = tiny_results_i7.to_records()
        assert {"dim", "tsize", "dsize", "band", "halo", "rtime"} <= set(records[0])

    def test_invalid_threshold_rejected(self, i7_2600k, tiny_space):
        with pytest.raises(SearchError):
            ExhaustiveSearch(i7_2600k, tiny_space, threshold_s=0)

    def test_empty_instance_list_rejected(self, i7_2600k, tiny_space):
        with pytest.raises(SearchError):
            ExhaustiveSearch(i7_2600k, tiny_space).sweep(instances=[])
