"""Tests for the measured-profile autotuning pipeline.

Covers the whole profile → train → tune loop on a deliberately tiny
instance grid (this runs for real), persistence round-trips including the
stale ``format_version`` contract, and the tuned-plan cache.
"""

import math

import pytest

from repro.autotuner.measured import (
    DEFAULT_MODEL_PATH,
    DEFAULT_PROFILE_PATH,
    PROFILE_FORMAT_VERSION,
    MeasuredProfile,
    MeasuredRecord,
    MeasuredTuner,
    ProfileConfig,
    load_profile,
    profile_host,
    save_profile,
)
from repro.autotuner.persistence import load_tuner, save_tuner
from repro.core.exceptions import SearchError
from repro.core.params import InputParams, TunableParams
from repro.hardware.calibration import constants_from_measurements
from repro.hardware.system import detect_local_system
from repro.utils.serialization import load_json, save_json

TINY_CONFIG = ProfileConfig(
    apps=("lcs", "synthetic"),
    dims=(48, 64),
    backends=("serial", "vectorized", "mp-parallel"),
    tiles=(8, 16),
    repeats=3,
    budget_s=60.0,
)


@pytest.fixture(scope="module")
def tiny_profile():
    return profile_host(detect_local_system(), TINY_CONFIG)


@pytest.fixture(scope="module")
def tiny_tuner(tiny_profile):
    return MeasuredTuner.train(tiny_profile)


class TestDetectLocalSystem:
    def test_reports_this_host(self):
        system = detect_local_system()
        assert system.name == "local"
        assert system.cpu.cores >= 1
        assert not system.has_gpu

    def test_resolve_system_knows_local(self):
        from repro.hardware.platforms import resolve_system

        assert resolve_system("local").name == "local"
        assert resolve_system("i7-2600K").name == "i7-2600K"


class TestProfileHost:
    def test_grid_is_covered(self, tiny_profile):
        assert len(tiny_profile.instances()) == 4  # 2 apps x 2 dims
        assert set(tiny_profile.backends()) == set(TINY_CONFIG.backends)
        assert not tiny_profile.host["truncated"]

    def test_serial_reference_every_instance(self, tiny_profile):
        for params in tiny_profile.instances():
            assert tiny_profile.serial_time(params) > 0

    def test_walls_are_positive_and_best_is_min(self, tiny_profile):
        for params in tiny_profile.instances():
            records = tiny_profile.records_for(params)
            assert all(r.wall_s > 0 for r in records)
            assert tiny_profile.best(params).wall_s == min(r.wall_s for r in records)

    def test_reference_backend_required(self):
        with pytest.raises(SearchError):
            ProfileConfig(backends=("vectorized",)).validate()

    def test_budget_truncates_but_keeps_serial(self):
        config = ProfileConfig(
            apps=("lcs",),
            dims=(32, 48),
            backends=("serial", "vectorized", "mp-parallel"),
            tiles=(8, 16),
            repeats=1,
            budget_s=1e-9,
        )
        profile = profile_host(detect_local_system(), config)
        assert profile.host["truncated"]
        for params in profile.instances():
            assert profile.serial_time(params) > 0

    def test_to_search_results_is_compatible(self, tiny_profile):
        results = tiny_profile.to_search_results()
        assert results.system == "local"
        assert set(results.instances()) == set(tiny_profile.instances())
        for params in results.instances():
            assert results.best(params).rtime == tiny_profile.best(params).wall_s
            assert results.serial_time(params) == tiny_profile.serial_time(params)


class TestProfilePersistence:
    def test_round_trip(self, tiny_profile, tmp_path):
        path = save_profile(tiny_profile, tmp_path / "profile.json")
        restored = load_profile(path)
        assert restored.system == tiny_profile.system
        assert restored.records == tiny_profile.records
        assert restored.host["cores"] == tiny_profile.host["cores"]

    def test_stale_format_version_raises(self, tiny_profile, tmp_path):
        path = save_profile(tiny_profile, tmp_path / "profile.json")
        payload = load_json(path)
        payload["format_version"] = PROFILE_FORMAT_VERSION + 1
        save_json(payload, path)
        with pytest.raises(SearchError, match="format version"):
            load_profile(path)

    def test_not_a_profile_raises(self, tmp_path):
        path = save_json({"something": "else"}, tmp_path / "junk.json")
        with pytest.raises(SearchError, match="does not contain"):
            load_profile(path)

    def test_default_paths_are_under_benchmarks(self):
        assert "benchmarks" in str(DEFAULT_PROFILE_PATH)
        assert "benchmarks" in str(DEFAULT_MODEL_PATH)


class TestMeasuredTuner:
    def test_trains_cpu_only_models(self, tiny_tuner):
        assert tiny_tuner.model.fitted
        assert not tiny_tuner.model.supports_gpu
        assert tiny_tuner.model.cpu_tile_choices == (1, 8, 16)

    def test_tuned_plan_near_measured_best(self, tiny_tuner):
        # The pipeline's acceptance bound is 1.25x at `repro profile --quick`
        # scale (dims >= 128, milliseconds per wall); at this test's tiny
        # dims the walls are fractions of a millisecond and raw timer noise
        # between two configurations alone can exceed 25%, so the bound here
        # is deliberately looser — it still catches picking a genuinely bad
        # backend or tile.
        for params in tiny_tuner.profile.instances():
            records = tiny_tuner.profile.records_for(params)
            app = records[0].app
            plan = tiny_tuner.tune(app, params.dim)
            best = tiny_tuner.profile.best(params, app=app).wall_s
            assert plan.expected_s <= 2.0 * best
            assert plan.backend in TINY_CONFIG.backends

    def test_plan_cache_is_o1(self, tiny_tuner):
        first = tiny_tuner.tune("lcs", 48)
        again = tiny_tuner.tune("lcs", 48)
        assert again is first  # dict hit, not recomputed
        assert tiny_tuner.cache_info()["plans"] >= 1

    def test_unseen_dim_uses_nearest_instance(self, tiny_tuner):
        plan = tiny_tuner.tune("lcs", 56)
        assert plan.dim == 56
        assert plan.expected_s > 0
        anchor = tiny_tuner.nearest_instance(
            InputParams(dim=56, tsize=0.5, dsize=0)
        )
        assert anchor.dim in (48, 64)

    def test_model_round_trip_preserves_predictions(self, tiny_profile, tiny_tuner, tmp_path):
        path = save_tuner(tiny_tuner.model, tmp_path / "tuner.json")
        restored = MeasuredTuner(tiny_profile, load_tuner(path))
        assert restored.model.cpu_tile_choices == tiny_tuner.model.cpu_tile_choices
        for params in tiny_profile.instances():
            app = tiny_profile.records_for(params)[0].app
            assert restored.tune(app, params.dim) == tiny_tuner.tune(app, params.dim)

    def test_empty_profile_rejected(self):
        with pytest.raises(SearchError):
            MeasuredTuner.train(MeasuredProfile(system="local"))

    def test_same_signature_apps_keep_their_own_measurements(self):
        # lcs and edit-distance share the (tsize=0.5, dsize=0) signature, so
        # they collapse onto one InputParams instance; deployment queries
        # must still answer from the asking app's own records.
        config = ProfileConfig(
            apps=("lcs", "edit-distance"),
            dims=(48,),
            backends=("serial", "vectorized"),
            tiles=(8,),
            repeats=1,
        )
        profile = profile_host(detect_local_system(), config)
        assert len(profile.instances()) == 1  # signatures collapsed
        tuner = MeasuredTuner.train(profile)
        params = profile.instances()[0]
        for app in ("lcs", "edit-distance"):
            plan = tuner.tune(app, 48)
            own_walls = {r.wall_s for r in profile.records_for(params, app=app)}
            assert plan.expected_s in own_walls
            assert plan.best_measured_s == profile.best(params, app=app).wall_s


class TestCalibration:
    def test_constants_from_measurements_inverts_serial(self):
        system = detect_local_system()
        # Fabricate walls from a known iter-ns so the fit must recover it.
        true_iter_ns = 5.0
        clock = 1.6 / system.cpu.freq_ghz
        walls = {}
        for dim in (64, 128):
            params = InputParams(dim=dim, tsize=2.0, dsize=0)
            walls[params] = params.cells * true_iter_ns * params.tsize * clock * 1e-9
        constants = constants_from_measurements(system, walls)
        assert math.isclose(constants.cpu_iter_ns, true_iter_ns, rel_tol=1e-6)

    def test_profile_calibration_predicts_same_order(self, tiny_profile):
        system = detect_local_system()
        constants = tiny_profile.calibrated_constants(system)
        from repro.hardware.costmodel import CostModel

        model = CostModel(system, constants)
        params = tiny_profile.instances()[0]
        predicted = model.serial_time(params)
        measured = tiny_profile.serial_time(params)
        # Same order of magnitude is all the analytic form can promise.
        assert predicted == pytest.approx(measured, rel=9.0)

    def test_needs_at_least_one_wall(self):
        with pytest.raises(ValueError):
            constants_from_measurements(detect_local_system(), {})


class TestMeasuredReport:
    def test_report_renders_and_summarises(self, tiny_profile, tiny_tuner, tmp_path):
        from repro.analysis.measured import write_measured_report

        path = write_measured_report(
            tmp_path / "report.txt", tiny_profile, tiny_tuner, detect_local_system()
        )
        text = path.read_text(encoding="utf-8")
        assert "average-case gap" in text
        assert "tuned-plan efficiency" in text
        for params in tiny_profile.instances():
            assert str(params.dim) in text


class TestMeasuredRecordSerialisation:
    def test_record_round_trip(self):
        record = MeasuredRecord(
            app="lcs",
            backend="mp-parallel",
            workers=2,
            params=InputParams(dim=64, tsize=0.5, dsize=0),
            tunables=TunableParams(cpu_tile=16),
            wall_s=0.0123,
            repeats=3,
        )
        assert MeasuredRecord.from_dict(record.to_dict()) == record
