"""Tests for training-set generation and the learned per-parameter models."""

import pytest

from repro.autotuner.models import LearnedTuner
from repro.autotuner.training import (
    INPUT_FEATURES,
    TrainingSetBuilder,
    summarise_training_set,
)
from repro.core.exceptions import SearchError
from repro.core.params import InputParams, TunableParams


class TestTrainingSetBuilder:
    def test_best_five_per_sampled_instance(self, tiny_results_i7):
        builder = TrainingSetBuilder(best_per_instance=5, instance_stride=2)
        training = builder.build(tiny_results_i7)
        assert len(training.train_instances) >= 1
        assert len(training) <= 5 * len(training.train_instances)
        assert len(training) >= len(training.train_instances)

    def test_split_avoids_dsize_aliasing(self, tiny_results_i7):
        builder = TrainingSetBuilder(instance_stride=2)
        train, holdout = builder.split_instances(tiny_results_i7)
        assert train and holdout
        assert set(train).isdisjoint(holdout)
        assert set(train) | set(holdout) == set(tiny_results_i7.instances())

    def test_records_carry_labels(self, tiny_training):
        record = tiny_training.records[0]
        assert {"use_parallel", "best_uses_gpu", "speedup", "serial_rtime"} <= set(record)

    def test_datasets_extracted(self, tiny_training):
        gate = tiny_training.gate_dataset()
        assert gate.feature_names == list(INPUT_FEATURES)
        cpu = tiny_training.dataset("cpu_tile")
        assert cpu.n_samples == len(tiny_training)

    def test_gpu_dataset_filters_cpu_best_instances(self, tiny_training):
        if not tiny_training.has_gpu_records():
            pytest.skip("tiny space produced no GPU-favouring instances")
        ds = tiny_training.gpu_dataset("band", ("dim", "tsize", "dsize"))
        assert (ds.y >= 0).all()

    def test_summary_statistics(self, tiny_training):
        summary = summarise_training_set(tiny_training)
        assert summary["n_records"] == len(tiny_training)
        assert 0.0 <= summary["fraction_gpu"] <= 1.0
        assert summary["max_speedup"] >= summary["mean_speedup"] > 0

    def test_builder_validation(self):
        with pytest.raises(SearchError):
            TrainingSetBuilder(best_per_instance=0)
        with pytest.raises(SearchError):
            TrainingSetBuilder(instance_stride=0)
        with pytest.raises(SearchError):
            TrainingSetBuilder(parallel_margin=0.0)


class TestLearnedTuner:
    def test_fit_and_predict_valid_config(self, tiny_training, i7_2600k):
        tuner = LearnedTuner(
            system_name=i7_2600k.name, supports_gpu=True, supports_dual_gpu=True
        ).fit(tiny_training)
        config = tuner.predict({"dim": 128, "tsize": 500, "dsize": 1})
        assert isinstance(config, TunableParams)
        assert config.band <= 127

    def test_fine_grained_instances_avoid_gpu(self, reduced_tuner_i7):
        """The Smith-Waterman scale (tsize=0.5) must map to a CPU-only config."""
        config = reduced_tuner_i7.model.predict({"dim": 2700, "tsize": 0.5, "dsize": 0})
        assert config.is_cpu_only

    def test_coarse_grained_instances_use_gpu(self, reduced_tuner_i7):
        config = reduced_tuner_i7.model.predict({"dim": 2700, "tsize": 8000, "dsize": 1})
        assert config.uses_gpu
        assert config.band > 1000

    def test_single_gpu_system_never_predicts_dual(self, tiny_results_i3, i3):
        training = TrainingSetBuilder().build(tiny_results_i3)
        tuner = LearnedTuner(
            system_name=i3.name, supports_gpu=True, supports_dual_gpu=False
        ).fit(training)
        for tsize in (10, 500, 5000):
            config = tuner.predict({"dim": 128, "tsize": tsize, "dsize": 1})
            assert config.gpu_count <= 1

    def test_model_tree_text_available(self, reduced_tuner_i7):
        text = reduced_tuner_i7.model.model_tree_text("band")
        assert "LM" in text
        with pytest.raises(SearchError):
            reduced_tuner_i7.model.model_tree_text("warp")

    def test_unfitted_predict_rejected(self):
        with pytest.raises(Exception):
            LearnedTuner(system_name="x").predict({"dim": 10, "tsize": 1, "dsize": 0})

    def test_serialisation_roundtrip(self, reduced_tuner_i7):
        data = reduced_tuner_i7.model.to_dict()
        clone = LearnedTuner.from_dict(data)
        for features in ({"dim": 1900, "tsize": 750, "dsize": 4}, {"dim": 700, "tsize": 10, "dsize": 1}):
            assert clone.predict(features) == reduced_tuner_i7.model.predict(features)
