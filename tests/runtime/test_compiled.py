"""Tests of the JIT-compiled kernel tier (`compiled`).

The tier is optional: without :mod:`numba` it must be invisible to every
enumerating caller (registry availability, the tuner's backend dimension)
and raise a typed error when constructed and run directly.  With numba the
acceptance property is bit-exact equality with the numpy reference for the
ported kernels (edit-distance, lcs, viterbi) and a silent vectorized
fallback for everything else.  The gating tests run everywhere; the
numerical tests auto-skip without numba.
"""

import numpy as np
import pytest

from repro.apps.registry import available_applications, get_application
from repro.core.exceptions import ExecutionError
from repro.core.params import TunableParams
from repro.runtime import (
    CompiledExecutor,
    SerialExecutor,
    available_executors,
    compiled_fill_for,
    numba_available,
)
from repro.runtime.registry import ENGINE_SPECS, engines_with


class TestGating:
    """The tier is exactly as available as numba is."""

    def test_registry_availability_tracks_numba(self):
        listed = "compiled" in available_executors()
        assert listed == numba_available()
        assert ("compiled" in engines_with("compiled")) == numba_available()

    def test_spec_declares_the_compiled_capability(self):
        spec = ENGINE_SPECS["compiled"]
        assert "compiled" in spec.capabilities
        assert spec.available is numba_available

    def test_fill_lookup_returns_none_without_numba(self, i7_2600k):
        problem = get_application("lcs", dim=8).problem(8)
        fill = compiled_fill_for(problem)
        if numba_available():
            assert fill is not None
        else:
            assert fill is None

    @pytest.mark.skipif(numba_available(), reason="needs a numba-less environment")
    def test_running_without_numba_is_a_typed_error(self, i7_2600k):
        problem = get_application("lcs", dim=8).problem(8)
        with pytest.raises(ExecutionError, match="numba"):
            CompiledExecutor(i7_2600k).execute(problem)

    def test_cost_model_prices_the_compiled_tier(self, i7_2600k):
        from repro.hardware.costmodel import CostModel

        model = CostModel(i7_2600k)
        params = get_application("lcs", dim=256).problem(256).input_params()
        compiled = model.engine_time("compiled", params)
        assert 0 < compiled < model.engine_time("serial", params)


class TestPortLogic:
    """The port arithmetic itself, validated without numba.

    The fill functions handed to ``@njit`` are plain Python; running them
    uncompiled against the serial reference proves the ports bit-exact in
    every environment, so a numba-less CI leg still guards the arithmetic
    and the jitted legs only add the compilation itself.
    """

    @pytest.mark.parametrize("app_name", ("edit-distance", "lcs", "viterbi"))
    @pytest.mark.parametrize("dim", (2, 3, 17, 64))
    def test_uncompiled_fill_matches_serial_bit_for_bit(
        self, app_name, dim, i7_2600k, monkeypatch
    ):
        from repro.runtime import compiled as compiled_mod

        problem = get_application(app_name, dim=dim).problem(dim)
        reference = SerialExecutor(i7_2600k).execute(problem).grid.values
        monkeypatch.setattr(compiled_mod, "_jitted", lambda name, fn: fn)
        fill = compiled_mod._PORTS[type(problem.kernel).__name__](problem)
        grid = problem.make_grid()
        fill(grid.values)
        assert np.array_equal(reference, grid.values)


requires_numba = pytest.mark.skipif(not numba_available(), reason="numba not installed")


@requires_numba
class TestCompiledKernels:
    """Bit-exact equality with the reference for the ported kernels."""

    @pytest.mark.parametrize("app_name", ("edit-distance", "lcs", "viterbi"))
    @pytest.mark.parametrize("dim", (2, 3, 17, 64))
    def test_matches_serial_bit_for_bit(self, app_name, dim, i7_2600k):
        problem = get_application(app_name, dim=dim).problem(dim)
        serial = SerialExecutor(i7_2600k).execute(problem)
        compiled = CompiledExecutor(i7_2600k).execute(problem)
        assert np.array_equal(serial.grid.values, compiled.grid.values)
        assert compiled.stats["compiled_kernel"] is True

    @pytest.mark.parametrize("app_name", available_applications())
    def test_every_app_runs_ported_or_fallback(self, app_name, i7_2600k):
        dim = 16
        problem = get_application(app_name, dim=dim).problem(dim)
        serial = SerialExecutor(i7_2600k).execute(problem)
        compiled = CompiledExecutor(i7_2600k).execute(problem)
        assert np.array_equal(serial.grid.values, compiled.grid.values)
        assert compiled.stats["cells_computed"] == dim * dim

    def test_fill_is_cached_per_problem(self, i7_2600k):
        problem = get_application("viterbi", dim=12).problem(12)
        first = compiled_fill_for(problem)
        second = compiled_fill_for(problem)
        assert first is second
