"""Tests for the timeline accumulator and the execution result object."""

import pytest

from repro.core.exceptions import ExecutionError
from repro.core.params import InputParams, TunableParams
from repro.hardware.costmodel import PhaseBreakdown
from repro.runtime.result import ExecutionResult
from repro.runtime.timeline import Timeline
from repro.apps.synthetic import SyntheticApp
from repro.runtime.serial import SerialExecutor


class TestTimeline:
    def test_charge_and_total(self):
        tl = Timeline()
        tl.charge("cpu", 1.5)
        tl.charge("cpu", 0.5)
        tl.charge("gpu", 2.0)
        assert tl.get("cpu") == 2.0
        assert tl.get("never") == 0.0
        assert tl.total == 4.0

    def test_merge(self):
        a, b = Timeline(), Timeline()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.get("x") == 3.0 and a.get("y") == 3.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ExecutionError):
            Timeline().charge("x", -0.1)

    def test_as_dict_copy(self):
        tl = Timeline()
        tl.charge("x", 1.0)
        d = tl.as_dict()
        d["x"] = 99.0
        assert tl.get("x") == 1.0


class TestExecutionResult:
    def make_result(self, with_grid=True):
        params = InputParams(dim=8, tsize=10, dsize=1)
        if with_grid:
            problem = SyntheticApp(dim=8, tsize=10, dsize=1).problem()
            grid = SerialExecutor.__new__(SerialExecutor)  # placeholder, not used
            from repro.runtime.compute import reference_grid

            grid = reference_grid(problem)
        else:
            grid = None
        return ExecutionResult(
            params=params,
            tunables=TunableParams(cpu_tile=2),
            system="test",
            mode="functional" if with_grid else "simulate",
            rtime=1.25,
            breakdown=PhaseBreakdown(pre_s=1.25),
            grid=grid,
        )

    def test_value_and_checksum_require_grid(self):
        result = self.make_result(with_grid=False)
        with pytest.raises(ValueError):
            _ = result.value
        with pytest.raises(ValueError):
            _ = result.checksum

    def test_value_checksum_present_with_grid(self):
        result = self.make_result(with_grid=True)
        assert result.value != 0.0
        assert result.checksum != 0.0

    def test_matches_requires_both_grids(self):
        a = self.make_result(with_grid=True)
        b = self.make_result(with_grid=True)
        c = self.make_result(with_grid=False)
        assert a.matches(b)
        assert not a.matches(c)

    def test_summary_includes_config_and_breakdown(self):
        summary = self.make_result(with_grid=False).summary()
        assert summary["cpu_tile"] == 2 and summary["band"] == -1
        assert summary["breakdown_pre_s"] == 1.25
        assert summary["rtime"] == 1.25
