"""Tests of the dependency-driven (barrier-free) tile dispatch.

Two layers are covered:

* :class:`~repro.runtime.scheduler.DependencyGraph` /
  :func:`~repro.runtime.scheduler.run_pipelined` — the readiness protocol
  itself: every tile retired exactly once, no successor released before its
  last predecessor retires, strict errors on protocol misuse, and no
  starvation on any decomposition or clipped range;
* the executor surface — ``dispatch="pipelined"`` on the worker pool and
  :class:`~repro.runtime.mp_parallel.PipelinedMPExecutor` — whose acceptance
  property is **bit-identical grids and witnesses** to the barriered
  reference for every registered application, worker count and band shape.
"""

from collections import Counter

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import available_applications, get_application
from repro.core.exceptions import ExecutionError, InvalidParameterError
from repro.core.params import TunableParams
from repro.core.tiling import TileDecomposition
from repro.runtime import (
    DependencyGraph,
    MPParallelExecutor,
    MPWavefrontPool,
    PipelinedMPExecutor,
    PipelinedSchedule,
    SerialExecutor,
    run_pipelined,
)
from repro.runtime.compute import reference_grid
from repro.runtime.scheduler import tile_intersects_range

HAS_FORK = "fork" in mp.get_all_start_methods()

grid_sides = st.integers(min_value=1, max_value=40)
tiles = st.integers(min_value=1, max_value=12)


def _key(tile):
    return (tile.tile_row, tile.tile_col)


def _witness_equal(a, b):
    """Bit-exact witness comparison (witnesses are arrays or None)."""
    if a is None or b is None:
        return a is None and b is None
    return np.array_equal(a, b)


def _drain(graph):
    """Sequential drain; returns the keys in retirement order."""
    order = []
    while not graph.done:
        tile = graph.acquire()
        assert tile is not None, "graph starved with tiles outstanding"
        graph.retire(tile)
        order.append(_key(tile))
    return order


class TestDependencyGraph:
    """The readiness protocol on the full (unclipped) decomposition."""

    @given(rows=grid_sides, cols=grid_sides, tile=tiles)
    @settings(max_examples=80, deadline=None)
    def test_every_tile_retired_exactly_once(self, rows, cols, tile):
        decomp = TileDecomposition(rows, cols, tile)
        graph = DependencyGraph(decomp)
        seen = Counter(_drain(graph))
        assert len(seen) == decomp.n_tiles == graph.n_tiles
        assert all(count == 1 for count in seen.values())

    @given(rows=grid_sides, cols=grid_sides, tile=tiles)
    @settings(max_examples=80, deadline=None)
    def test_no_successor_released_before_its_predecessors(self, rows, cols, tile):
        decomp = TileDecomposition(rows, cols, tile)
        graph = DependencyGraph(decomp)
        retired = set()
        while not graph.done:
            t = graph.acquire()
            assert t is not None
            key = _key(t)
            for pred in ((key[0] - 1, key[1]), (key[0], key[1] - 1),
                         (key[0] - 1, key[1] - 1)):
                if pred[0] >= 0 and pred[1] >= 0:
                    assert pred in retired, (
                        f"tile {key} acquired before predecessor {pred} retired"
                    )
            graph.retire(t)
            retired.add(key)

    def test_sequential_drain_matches_wave_order(self):
        decomp = TileDecomposition(20, 20, 5)
        order = _drain(DependencyGraph(decomp))
        waves = [k[0] + k[1] for k in order]
        assert waves == sorted(waves)

    def test_retire_without_acquire_raises(self):
        decomp = TileDecomposition(10, 10, 5)
        graph = DependencyGraph(decomp)
        tile = next(iter(decomp.all_tiles()))
        with pytest.raises(ExecutionError, match="without being acquired"):
            graph.retire(tile)

    def test_double_retire_raises(self):
        graph = DependencyGraph(TileDecomposition(10, 10, 5))
        tile = graph.acquire()
        graph.retire(tile)
        with pytest.raises(ExecutionError, match="retired twice"):
            graph.retire(tile)

    def test_release_happens_only_at_last_predecessor(self):
        # 2x2 tile grid: the corner (1,1) must be released exactly when the
        # second of its two wave-1 predecessors retires, not at the first.
        graph = DependencyGraph(TileDecomposition(10, 10, 5))
        origin = graph.acquire()
        assert _key(origin) == (0, 0)
        released = {_key(t) for t in graph.retire(origin)}
        assert released == {(0, 1), (1, 0)}
        first = graph.acquire()
        assert graph.retire(first) == []  # (1,1) still waits on the other
        second = graph.acquire()
        assert {_key(t) for t in graph.retire(second)} == {(1, 1)}


class TestClippedGraph:
    """Range-clipped graphs cover exactly the intersecting tiles."""

    @given(
        rows=grid_sides,
        cols=grid_sides,
        tile=tiles,
        lo=st.integers(min_value=0, max_value=80),
        span=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=80, deadline=None)
    def test_clipped_drain_covers_intersecting_tiles_once(
        self, rows, cols, tile, lo, span
    ):
        decomp = TileDecomposition(rows, cols, tile)
        hi = lo + span
        expected = {
            _key(t) for t in decomp.all_tiles() if tile_intersects_range(t, lo, hi)
        }
        graph = PipelinedSchedule(decomp).graph(lo, hi)
        seen = Counter(_drain(graph))
        assert set(seen) == expected
        assert all(count == 1 for count in seen.values())

    def test_empty_range_graph_is_immediately_done(self):
        graph = PipelinedSchedule(TileDecomposition(10, 10, 4)).graph(50, 40)
        assert graph.n_tiles == 0
        assert graph.done
        assert graph.acquire() is None

    def test_critical_path_is_the_tile_diagonal_count(self):
        decomp = TileDecomposition(20, 12, 4)
        assert PipelinedSchedule(decomp).critical_path == decomp.n_tile_diagonals


class TestRunPipelined:
    """The drain driver, sequential and pooled."""

    def test_sequential_drain_executes_every_tile(self):
        decomp = TileDecomposition(24, 24, 6)
        graph = DependencyGraph(decomp)
        seen = []
        count = run_pipelined(graph, lambda t: seen.append(_key(t)))
        assert count == decomp.n_tiles
        assert len(seen) == decomp.n_tiles
        assert graph.done

    def test_collect_receives_one_result_per_tile(self):
        decomp = TileDecomposition(15, 15, 4)
        results = []
        run_pipelined(
            DependencyGraph(decomp), lambda t: _key(t), collect=results.append
        )
        assert sorted(results) == sorted(_key(t) for t in decomp.all_tiles())


class TestPoolDispatch:
    """``dispatch="pipelined"`` on the worker pool is bit-identical."""

    def test_unknown_dispatch_rejected(self, small_synthetic):
        grid = small_synthetic.make_grid()
        with MPWavefrontPool(small_synthetic, grid, tile=4, workers=1) as pool:
            with pytest.raises(InvalidParameterError, match="dispatch"):
                pool.run_range(0, 2 * small_synthetic.dim - 2, dispatch="bogus")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_pipelined_full_sweep_matches_reference(self, small_synthetic, workers):
        reference = reference_grid(small_synthetic)
        grid = small_synthetic.make_grid()
        dim = small_synthetic.dim
        with MPWavefrontPool(small_synthetic, grid, tile=5, workers=workers) as pool:
            tiles, cells = pool.run_range(0, 2 * dim - 2, dispatch="pipelined")
            # The in-process fallback sweeps whole diagonals (0 tiles).
            expected_tiles = pool.decomposition.n_tiles if pool.is_multiprocess else 0
        assert cells == dim * dim
        assert tiles == expected_tiles
        assert np.array_equal(reference.values, grid.values)

    def test_pipelined_subrange_matches_barrier(self, small_synthetic):
        dim = small_synthetic.dim
        split = dim - 2
        grid_a = small_synthetic.make_grid()
        grid_b = small_synthetic.make_grid()
        for grid, dispatch in ((grid_a, "barrier"), (grid_b, "pipelined")):
            with MPWavefrontPool(small_synthetic, grid, tile=5, workers=2) as pool:
                pool.run_range(0, split, dispatch=dispatch)
                pool.run_range(split + 1, 2 * dim - 2, dispatch=dispatch)
        assert np.array_equal(grid_a.values, grid_b.values)


class TestPipelinedExecutor:
    """The acceptance property: grids AND witnesses identical to serial."""

    @pytest.mark.parametrize("app_name", available_applications())
    @pytest.mark.parametrize("workers", (1, 2))
    def test_matches_serial_cell_for_cell(self, app_name, workers, i7_2600k):
        dim = 21
        problem = get_application(app_name, dim=dim).problem(dim)
        serial = SerialExecutor(i7_2600k).execute(problem)
        result = PipelinedMPExecutor(i7_2600k, workers=workers).execute(
            problem, TunableParams(cpu_tile=6)
        )
        assert np.array_equal(serial.grid.values, result.grid.values)
        assert _witness_equal(serial.witness, result.witness)
        assert result.stats["cells_computed"] == dim * dim
        assert result.stats["dispatch"] == "pipelined"

    @pytest.mark.parametrize("tile", [1, 3, 7, 64])
    def test_tile_size_does_not_change_the_grid(self, tile, small_synthetic, i7_2600k):
        serial = SerialExecutor(i7_2600k).execute(small_synthetic)
        result = PipelinedMPExecutor(i7_2600k, workers=2).execute(
            small_synthetic, TunableParams(cpu_tile=tile)
        )
        assert np.array_equal(serial.grid.values, result.grid.values)

    def test_matches_barriered_executor_exactly(self, small_synthetic, i7_2600k):
        barrier = MPParallelExecutor(i7_2600k, workers=2).execute(
            small_synthetic, TunableParams(cpu_tile=4)
        )
        pipelined = PipelinedMPExecutor(i7_2600k, workers=2).execute(
            small_synthetic, TunableParams(cpu_tile=4)
        )
        assert np.array_equal(barrier.grid.values, pipelined.grid.values)
        assert _witness_equal(barrier.witness, pipelined.witness)

    def test_expected_time_never_exceeds_barriered(self, i7_2600k, small_synthetic):
        # The cost model's pipelined term drops the per-wave straggler wait,
        # so its estimate can only improve on the barriered one.
        tunables = TunableParams(cpu_tile=4)
        barrier = MPParallelExecutor(i7_2600k, workers=4).execute(
            small_synthetic, tunables, mode="simulate"
        )
        pipelined = PipelinedMPExecutor(i7_2600k, workers=4).execute(
            small_synthetic, tunables, mode="simulate"
        )
        assert pipelined.rtime <= barrier.rtime + 1e-12


@pytest.mark.parametrize("app_name", ("lcs", "viterbi", "edit-distance"))
@given(
    dim=st.integers(min_value=2, max_value=24),
    tile=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=12, deadline=None)
def test_schedule_equivalence_battery(app_name, dim, tile):
    """Hypothesis battery: pipelined ≡ barriered over apps and band shapes."""
    problem = get_application(app_name, dim=dim).problem(dim)
    from repro.hardware import platforms

    system = platforms.I7_2600K
    tunables = TunableParams(cpu_tile=tile)
    barrier = MPParallelExecutor(system, workers=1).execute(problem, tunables)
    pipelined = PipelinedMPExecutor(system, workers=1).execute(problem, tunables)
    assert np.array_equal(barrier.grid.values, pipelined.grid.values)
    assert _witness_equal(barrier.witness, pipelined.witness)
