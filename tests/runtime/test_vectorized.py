"""Tests for the vectorized wavefront engine, its executor and the registry."""

import numpy as np
import pytest

from repro.apps.registry import available_applications, get_application
from repro.core.exceptions import KernelError
from repro.core.params import TunableParams
from repro.core.pattern import FunctionKernel, WavefrontProblem
from repro.runtime import (
    DiagonalSweepEngine,
    HybridExecutor,
    SerialExecutor,
    VectorizedSerialExecutor,
    available_executors,
    available_serial_engines,
    compute_diagonal_range_vectorized,
    default_serial_executor,
    get_executor,
    numpy_available,
    register_executor,
)
from repro.runtime.compute import compute_diagonal_range
from repro.runtime.executor_base import Executor


class TestEquivalenceWithSerial:
    """The acceptance property: identical grids to serial.py on every app."""

    @pytest.mark.parametrize("app_name", available_applications())
    @pytest.mark.parametrize("dim", [2, 3, 5, 17, 32])
    def test_vectorized_matches_serial_cell_for_cell(self, app_name, dim, i7_2600k):
        app = get_application(app_name, dim=dim)
        problem = app.problem(dim)
        serial = SerialExecutor(i7_2600k).execute(problem)
        vectorized = VectorizedSerialExecutor(i7_2600k).execute(problem)
        assert np.array_equal(serial.grid.values, vectorized.grid.values)

    @pytest.mark.parametrize("app_name", available_applications())
    def test_fused_evaluator_active_where_expected(self, app_name, i7_2600k):
        app = get_application(app_name, dim=24)
        problem = app.problem(24)
        result = VectorizedSerialExecutor(i7_2600k).execute(problem)
        # Every registered application ships a fused evaluator at its
        # natural problem size.
        assert result.stats["fused_kernel"] is True

    def test_generic_fallback_without_evaluator(self, i7_2600k):
        kernel = FunctionKernel(
            lambda i, j, w, n, nw: np.maximum(w, n) + 1.0, tsize=1.0, name="counting"
        )
        problem = WavefrontProblem(dim=12, kernel=kernel)
        result = VectorizedSerialExecutor(i7_2600k).execute(problem)
        assert result.stats["fused_kernel"] is False
        i, j = np.meshgrid(np.arange(12), np.arange(12), indexing="ij")
        assert np.array_equal(result.grid.values, i + j + 1.0)

    def test_matrix_chain_off_size_falls_back(self, i7_2600k):
        # A problem dim different from the chain length has modular
        # wrap-around semantics with no slice equivalent.
        app = get_application("matrix-chain", dim=32)
        problem = app.problem(20)
        serial = SerialExecutor(i7_2600k).execute(problem)
        vectorized = VectorizedSerialExecutor(i7_2600k).execute(problem)
        assert vectorized.stats["fused_kernel"] is False
        assert np.array_equal(serial.grid.values, vectorized.grid.values)


class TestDiagonalSweepEngine:
    def test_partial_range_continues_a_scalar_prefix(self, small_synthetic):
        dim = small_synthetic.dim
        split = dim + 3
        scalar = small_synthetic.make_grid()
        compute_diagonal_range(small_synthetic, scalar, 0, 2 * dim - 2)

        mixed = small_synthetic.make_grid()
        compute_diagonal_range(small_synthetic, mixed, 0, split)
        cells = compute_diagonal_range_vectorized(small_synthetic, mixed, split + 1, 2 * dim - 2)
        assert cells > 0
        assert np.array_equal(scalar.values, mixed.values)

    def test_range_sweep_returns_cell_count(self, small_synthetic):
        grid = small_synthetic.make_grid()
        engine = DiagonalSweepEngine(small_synthetic)
        cells = engine.sweep(grid)
        assert cells == small_synthetic.dim**2

    def test_empty_range_is_noop(self, small_synthetic):
        grid = small_synthetic.make_grid()
        assert DiagonalSweepEngine(small_synthetic).sweep(grid, 5, 4) == 0
        assert np.all(grid.values == 0.0)

    def test_out_of_bounds_range_rejected(self, small_synthetic):
        grid = small_synthetic.make_grid()
        with pytest.raises(KernelError):
            DiagonalSweepEngine(small_synthetic).sweep(grid, 0, 2 * small_synthetic.dim)

    def test_non_finite_kernel_output_raises(self, i7_2600k):
        kernel = FunctionKernel(
            lambda i, j, w, n, nw: np.full(i.shape, np.inf), tsize=1.0, name="bad"
        )
        problem = WavefrontProblem(dim=8, kernel=kernel)
        with pytest.raises(KernelError):
            VectorizedSerialExecutor(i7_2600k).execute(problem)

    def test_wrong_kernel_shape_raises(self, i7_2600k):
        kernel = FunctionKernel(
            lambda i, j, w, n, nw: np.zeros(i.size + 1), tsize=1.0, name="misshapen"
        )
        problem = WavefrontProblem(dim=8, kernel=kernel)
        with pytest.raises(KernelError):
            VectorizedSerialExecutor(i7_2600k).execute(problem)


class TestEngineCache:
    def test_engine_reused_across_range_calls(self, small_synthetic):
        from repro.runtime import engine_for

        assert engine_for(small_synthetic) is engine_for(small_synthetic)

    def test_compute_range_uses_the_cached_engine(self, small_synthetic, monkeypatch):
        import repro.runtime.vectorized as vec

        calls = {"built": 0}
        original = vec.DiagonalSweepEngine.__init__

        def counting_init(self, problem):
            calls["built"] += 1
            original(self, problem)

        monkeypatch.setattr(vec.DiagonalSweepEngine, "__init__", counting_init)
        grid = small_synthetic.make_grid()
        last = 2 * small_synthetic.dim - 2
        compute_diagonal_range_vectorized(small_synthetic, grid, 0, last // 2)
        compute_diagonal_range_vectorized(small_synthetic, grid, last // 2 + 1, last)
        assert calls["built"] == 1  # the O(dim^2) precompute was paid once

    def test_problem_stays_picklable_with_cached_engine(self, small_synthetic):
        # The multicore backend ships problems to pool workers (pickled under
        # spawn start methods); the cached engine holds closure evaluators
        # and must be excluded from the pickled state.
        import pickle

        from repro.runtime import engine_for

        engine_for(small_synthetic)
        clone = pickle.loads(pickle.dumps(small_synthetic))
        assert clone.dim == small_synthetic.dim
        assert not hasattr(clone, "_cached_sweep_engine")

    def test_cache_does_not_keep_problems_alive(self, i7_2600k):
        import gc
        import weakref

        from repro.apps.synthetic import SyntheticApp
        from repro.runtime import engine_for

        problem = SyntheticApp(dim=16).problem()
        engine_for(problem)
        ref = weakref.ref(problem)
        del problem
        gc.collect()
        assert ref() is None


class TestRangeLimitedFiniteCheck:
    def test_non_finite_outside_the_swept_range_is_ignored(self, small_synthetic):
        dim = small_synthetic.dim
        grid = small_synthetic.make_grid()
        # Poison a cell on a diagonal far after the swept range; the sweep of
        # the leading diagonals must not scan (or reject) it.
        grid.values[dim - 1, dim - 1] = np.inf
        engine = DiagonalSweepEngine(small_synthetic)
        assert engine.sweep(grid, 0, 3) == 10

    def test_non_finite_inside_the_swept_range_raises(self, i7_2600k):
        kernel = FunctionKernel(
            lambda i, j, w, n, nw: np.where(i + j == 3, np.inf, 1.0),
            tsize=1.0,
            name="poison-d3",
        )
        problem = WavefrontProblem(dim=8, kernel=kernel)
        grid = problem.make_grid()
        engine = DiagonalSweepEngine(problem)
        assert engine.sweep(grid, 0, 2) == 6  # before the poisoned diagonal
        with pytest.raises(KernelError, match="diagonal 3"):
            engine.sweep(grid, 3, 5)


class TestVectorizedExecutor:
    def test_tunables_normalised_to_serial_configuration(self, small_synthetic, i7_2600k):
        result = VectorizedSerialExecutor(i7_2600k).execute(
            small_synthetic, TunableParams.from_encoding(cpu_tile=8, band=4, halo=-1)
        )
        assert result.tunables == TunableParams(cpu_tile=1)

    def test_simulated_rtime_beats_serial(self, i7_2600k):
        problem = get_application("synthetic", dim=512).problem(512)
        serial = SerialExecutor(i7_2600k).execute(problem, mode="simulate")
        vectorized = VectorizedSerialExecutor(i7_2600k).execute(problem, mode="simulate")
        assert vectorized.rtime < serial.rtime

    def test_hybrid_cpu_engine_produces_identical_grid(self, small_synthetic, i7_2600k):
        tunables = TunableParams.from_encoding(cpu_tile=4, band=6, halo=2, gpu_tile=4)
        scalar = HybridExecutor(i7_2600k).execute(small_synthetic, tunables)
        batched = HybridExecutor(i7_2600k, cpu_engine="vectorized").execute(
            small_synthetic, tunables
        )
        assert np.array_equal(scalar.grid.values, batched.grid.values)

    def test_hybrid_rejects_unknown_engine(self, i7_2600k):
        with pytest.raises(Exception):
            HybridExecutor(i7_2600k, cpu_engine="fpga")


class TestRegistry:
    def test_all_strategies_registered(self):
        names = available_executors()
        for expected in (
            "serial",
            "vectorized",
            "cpu-parallel",
            "gpu-only-single",
            "gpu-only-multi",
            "hybrid",
        ):
            assert expected in names

    def test_get_executor_constructs_by_name(self, i7_2600k):
        executor = get_executor("vectorized", i7_2600k)
        assert isinstance(executor, VectorizedSerialExecutor)

    def test_unknown_executor_rejected(self, i7_2600k):
        with pytest.raises(KeyError):
            get_executor("quantum", i7_2600k)

    def test_default_serial_executor_prefers_vectorized(self, i7_2600k):
        assert numpy_available()  # the test environment ships numpy
        assert default_serial_executor(i7_2600k).strategy == "vectorized"
        assert available_serial_engines()[0] == "vectorized"

    def test_register_executor_decorator(self, i7_2600k):
        from repro.runtime.registry import EXECUTORS

        @register_executor
        class ProbeExecutor(SerialExecutor):
            strategy = "probe-executor"

        try:
            assert isinstance(get_executor("probe-executor", i7_2600k), ProbeExecutor)
        finally:
            del EXECUTORS["probe-executor"]

    def test_register_requires_strategy_name(self):
        class Nameless(Executor):
            def _breakdown(self, problem, tunables):  # pragma: no cover
                raise NotImplementedError

            def _run_functional(self, problem, tunables):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(Exception):
            register_executor(Nameless)


class TestEngineDimension:
    def test_search_space_exposes_engines(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        space = SearchSpace(tiny_space, i7_2600k)
        assert "vectorized" in space.engines
        assert "serial" in space.engines
        assert "engines" in space.describe()

    def test_best_engine_is_vectorized_for_typical_instances(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace
        from repro.core.params import InputParams

        space = SearchSpace(tiny_space, i7_2600k)
        params = InputParams(dim=1900, tsize=750, dsize=1)
        assert space.best_engine(params) == "vectorized"

    def test_tuner_selects_engine(self, trained_tuner_i7):
        from repro.core.params import InputParams

        params = InputParams(dim=128, tsize=500, dsize=1)
        tunables, engine = trained_tuner_i7.tune_with_engine(params)
        assert engine in ("vectorized", "serial")
        assert isinstance(tunables, TunableParams)
