"""Correctness tests for the hybrid three-phase executor and the GPU band.

The central invariant of the whole reproduction: for EVERY configuration of
the tunable parameters, the hybrid execution produces exactly the same grid
as the serial sweep.
"""

import numpy as np
import pytest

from repro.core.params import TunableParams
from repro.core.plan import ThreePhasePlan
from repro.device.context import DeviceContext
from repro.runtime.band import BandRunner
from repro.runtime.executor_base import ExecutionMode
from repro.runtime.gpu_multi import MultiGPUBandExecutor
from repro.runtime.gpu_single import SingleGPUBandExecutor
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.serial import SerialExecutor
from repro.apps.nash import NashEquilibriumApp
from repro.apps.sequence import SequenceComparisonApp
from repro.apps.synthetic import SyntheticApp


CONFIGS = [
    TunableParams(cpu_tile=4),                                   # all CPU
    TunableParams.from_encoding(2, 0, -1, 1),                    # single diagonal on GPU
    TunableParams.from_encoding(4, 8, -1, 1),                    # single GPU, partial band
    TunableParams.from_encoding(4, 8, -1, 8),                    # single GPU, tiled
    TunableParams.from_encoding(1, 31, -1, 1),                   # single GPU, full band
    TunableParams.from_encoding(8, 10, 0, 1),                    # dual GPU, halo 0
    TunableParams.from_encoding(2, 10, 3, 1),                    # dual GPU, small halo
    TunableParams.from_encoding(2, 31, 0, 4),                    # dual GPU, full band, tiled
    TunableParams.from_encoding(4, 14, 7, 1),                    # dual GPU, large halo
]


class TestHybridCorrectness:
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_hybrid_matches_serial_synthetic(self, i7_2600k, config):
        problem = SyntheticApp(dim=32, tsize=100, dsize=1).problem()
        serial = SerialExecutor(i7_2600k).execute(problem)
        hybrid = HybridExecutor(i7_2600k).execute(problem, config)
        assert serial.matches(hybrid), f"mismatch for {config.describe()}"

    @pytest.mark.parametrize("app_factory", [
        lambda: NashEquilibriumApp(dim=26),
        lambda: SequenceComparisonApp(dim=27, seed=1),
        lambda: SyntheticApp(dim=25, tsize=10, dsize=5),
    ], ids=["nash", "smith-waterman", "synthetic-d5"])
    def test_hybrid_matches_serial_real_apps(self, i7_3820, app_factory):
        problem = app_factory().problem()
        serial = SerialExecutor(i7_3820).execute(problem)
        for config in (CONFIGS[2], CONFIGS[5], CONFIGS[7]):
            hybrid = HybridExecutor(i7_3820).execute(problem, config)
            assert serial.matches(hybrid), config.describe()

    def test_single_gpu_system_runs_single_gpu_configs(self, i3):
        problem = SyntheticApp(dim=24, tsize=100, dsize=1).problem()
        serial = SerialExecutor(i3).execute(problem)
        hybrid = HybridExecutor(i3).execute(problem, TunableParams.from_encoding(4, 10, -1, 1))
        assert serial.matches(hybrid)

    def test_dual_gpu_config_rejected_on_single_gpu_system(self, i3):
        problem = SyntheticApp(dim=24, tsize=100, dsize=1).problem()
        with pytest.raises(Exception):
            HybridExecutor(i3).execute(problem, TunableParams.from_encoding(4, 10, 2, 1))

    def test_functional_and_simulate_report_same_rtime(self, i7_2600k):
        problem = SyntheticApp(dim=28, tsize=200, dsize=1).problem()
        executor = HybridExecutor(i7_2600k)
        config = TunableParams.from_encoding(4, 9, 2, 1)
        functional = executor.execute(problem, config, mode=ExecutionMode.FUNCTIONAL)
        simulated = executor.execute(problem, config, mode=ExecutionMode.SIMULATE)
        assert functional.rtime == pytest.approx(simulated.rtime)

    def test_breakdown_components_positive_for_gpu_config(self, i7_2600k):
        problem = SyntheticApp(dim=28, tsize=200, dsize=1).problem()
        result = HybridExecutor(i7_2600k).execute(
            problem, TunableParams.from_encoding(4, 9, -1, 1), mode="simulate"
        )
        b = result.breakdown
        assert b.pre_s > 0 and b.post_s > 0 and b.gpu_compute_s > 0 and b.startup_s > 0


class TestBandRunnerOperations:
    def make_band(self, system, dim=30, band=10, halo=2, gpu_count=2, gpu_tile=1, tsize=100):
        problem = SyntheticApp(dim=dim, tsize=tsize, dsize=1).problem()
        halo_enc = halo if gpu_count == 2 else -1
        tunables = TunableParams.from_encoding(4, band, halo_enc, gpu_tile).clipped(dim)
        plan = ThreePhasePlan(problem.input_params(), tunables)
        grid = problem.make_grid()
        # Compute the CPU prefix so the band has its boundary data.
        serial_grid = SerialExecutor(system).execute(problem).grid
        for d in range(0, plan.gpu.lo):
            grid.set_diagonal(d, serial_grid.get_diagonal(d))
        return problem, grid, plan, tunables, serial_grid

    def test_kernel_launch_count_untiled(self, i7_2600k):
        problem, grid, plan, tunables, _ = self.make_band(i7_2600k)
        with DeviceContext(i7_2600k, tunables.gpu_count) as ctx:
            stats = BandRunner(problem, grid, plan, tunables, ctx).run()
            # One launch per diagonal per device when gpu_tile == 1.
            assert stats["kernel_launches"] == stats["band_diagonals"] * tunables.gpu_count
            assert ctx.log.kernel_launches == stats["kernel_launches"]

    def test_halo_swaps_counted_and_bounded(self, i7_2600k):
        problem, grid, plan, tunables, _ = self.make_band(i7_2600k, halo=2)
        with DeviceContext(i7_2600k, 2) as ctx:
            stats = BandRunner(problem, grid, plan, tunables, ctx).run()
        n_diags = stats["band_diagonals"]
        assert 0 < stats["halo_swaps"] <= n_diags
        # Larger halo => no more swaps than a zero halo needs.
        problem, grid, plan, tunables, _ = self.make_band(i7_2600k, halo=0)
        with DeviceContext(i7_2600k, 2) as ctx:
            stats_zero = BandRunner(problem, grid, plan, tunables, ctx).run()
        assert stats["halo_swaps"] <= stats_zero["halo_swaps"]

    def test_redundant_cells_grow_with_halo(self, i7_2600k):
        baseline = None
        for halo in (0, 3):
            problem, grid, plan, tunables, _ = self.make_band(i7_2600k, halo=halo)
            with DeviceContext(i7_2600k, 2) as ctx:
                stats = BandRunner(problem, grid, plan, tunables, ctx).run()
            if baseline is None:
                baseline = stats["redundant_cells"]
            else:
                assert stats["redundant_cells"] > baseline

    def test_band_results_written_back_correctly(self, i7_2600k):
        problem, grid, plan, tunables, serial_grid = self.make_band(i7_2600k, halo=1)
        with DeviceContext(i7_2600k, 2) as ctx:
            BandRunner(problem, grid, plan, tunables, ctx).run()
        for d in range(plan.gpu.lo, plan.gpu.hi + 1):
            assert np.allclose(grid.get_diagonal(d), serial_grid.get_diagonal(d))

    def test_transfers_recorded(self, i7_2600k):
        problem, grid, plan, tunables, _ = self.make_band(i7_2600k, halo=2)
        with DeviceContext(i7_2600k, 2) as ctx:
            BandRunner(problem, grid, plan, tunables, ctx).run()
            assert ctx.log.bytes_h2d > 0 and ctx.log.bytes_d2h > 0


class TestGPUOnlyExecutors:
    def test_single_gpu_whole_grid(self, i3):
        problem = SyntheticApp(dim=20, tsize=100, dsize=1).problem()
        serial = SerialExecutor(i3).execute(problem)
        gpu = SingleGPUBandExecutor(i3).execute(problem)
        assert serial.matches(gpu)
        assert gpu.tunables.band == 19 and gpu.tunables.gpu_count == 1

    def test_multi_gpu_whole_grid(self, i7_3820):
        problem = SyntheticApp(dim=20, tsize=100, dsize=1).problem()
        serial = SerialExecutor(i7_3820).execute(problem)
        gpu = MultiGPUBandExecutor(i7_3820, halo=2).execute(problem)
        assert serial.matches(gpu)
        assert gpu.tunables.gpu_count == 2
