"""Tests for the serial executor and the shared compute helpers."""

import numpy as np
import pytest

from repro.core.exceptions import ExecutionError
from repro.core.params import TunableParams
from repro.core.pattern import FunctionKernel, WavefrontProblem
from repro.core.tiling import TileDecomposition
from repro.runtime.compute import (
    compute_diagonal_range,
    compute_tile,
    reference_grid,
    verify_against_reference,
)
from repro.runtime.executor_base import ExecutionMode
from repro.runtime.serial import SerialExecutor


def counting_problem(dim=10):
    """A problem whose exact solution is known: value = i + j + 1 everywhere."""
    kernel = FunctionKernel(
        lambda i, j, w, n, nw: np.maximum(w, n) + 1.0, tsize=1.0, name="counting"
    )
    return WavefrontProblem(dim=dim, kernel=kernel)


class TestComputeHelpers:
    def test_reference_grid_matches_closed_form(self):
        problem = counting_problem(8)
        grid = reference_grid(problem)
        i, j = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        assert np.array_equal(grid.values, i + j + 1.0)

    def test_compute_tile_respects_internal_dependencies(self):
        problem = counting_problem(9)
        grid = problem.make_grid()
        decomp = TileDecomposition(9, 9, 3)
        for wave in decomp.schedule():
            for tile in wave:
                compute_tile(problem, grid, tile)
        assert grid.allclose(reference_grid(problem))

    def test_compute_diagonal_range_counts_cells(self):
        problem = counting_problem(6)
        grid = problem.make_grid()
        assert compute_diagonal_range(problem, grid, 0, 10) == 36
        assert compute_diagonal_range(problem, grid, 5, 4) == 0

    def test_verify_against_reference_detects_corruption(self):
        problem = counting_problem(6)
        grid = reference_grid(problem)
        verify_against_reference(problem, grid)  # passes silently
        grid.values[3, 3] += 1.0
        with pytest.raises(ExecutionError):
            verify_against_reference(problem, grid)


class TestSerialExecutor:
    def test_functional_result_and_value(self, i7_2600k):
        problem = counting_problem(12)
        result = SerialExecutor(i7_2600k).execute(problem)
        assert result.value == 23.0  # (dim-1) + (dim-1) + 1
        assert result.stats["cells_computed"] == 144
        assert result.wall_time > 0.0

    def test_simulate_mode_produces_no_grid(self, i7_2600k):
        problem = counting_problem(12)
        result = SerialExecutor(i7_2600k).execute(problem, mode="simulate")
        assert result.grid is None and result.rtime > 0
        with pytest.raises(ValueError):
            _ = result.value

    def test_rtime_identical_across_modes(self, i7_2600k):
        problem = counting_problem(12)
        executor = SerialExecutor(i7_2600k)
        functional = executor.execute(problem, mode=ExecutionMode.FUNCTIONAL)
        simulated = executor.execute(problem, mode=ExecutionMode.SIMULATE)
        assert functional.rtime == pytest.approx(simulated.rtime)

    def test_tunables_normalised_to_serial(self, i7_2600k):
        problem = counting_problem(8)
        result = SerialExecutor(i7_2600k).execute(
            problem, TunableParams.from_encoding(8, 3, -1, 1)
        )
        assert result.tunables == TunableParams(cpu_tile=1)

    def test_unknown_mode_rejected(self, i7_2600k):
        with pytest.raises(Exception):
            SerialExecutor(i7_2600k).execute(counting_problem(8), mode="warp-speed")

    def test_summary_flattens_breakdown(self, i7_2600k):
        result = SerialExecutor(i7_2600k).execute(counting_problem(8), mode="simulate")
        summary = result.summary()
        assert summary["system"] == "i7-2600K"
        assert "breakdown_total_s" in summary and summary["rtime"] == result.rtime
