"""Tests for the tiled CPU-parallel executor and the tile scheduler."""

import pytest

from repro.core.params import TunableParams
from repro.core.tiling import TileDecomposition
from repro.runtime.cpu_parallel import CPUParallelExecutor
from repro.runtime.scheduler import TileScheduler, run_schedule
from repro.runtime.serial import SerialExecutor
from repro.apps.synthetic import SyntheticApp


class TestTileScheduler:
    def test_every_tile_scheduled_once(self):
        decomp = TileDecomposition(12, 12, 4)
        scheduler = TileScheduler(decomp, workers=3)
        scheduled = [item for wave in scheduler.waves() for item in wave]
        assert len(scheduled) == decomp.n_tiles
        assert len({(s.tile.tile_row, s.tile.tile_col) for s in scheduled}) == decomp.n_tiles

    def test_workers_assigned_round_robin(self):
        decomp = TileDecomposition(16, 16, 4)
        scheduler = TileScheduler(decomp, workers=2)
        loads = scheduler.worker_loads()
        assert sum(loads) == decomp.n_tiles
        assert max(loads) - min(loads) <= decomp.n_tile_diagonals

    def test_run_schedule_sequential_and_threaded_equivalent(self):
        decomp = TileDecomposition(10, 10, 5)
        waves = TileScheduler(decomp, workers=4).waves()
        seen_seq, seen_thr = [], []
        run_schedule(waves, lambda t: seen_seq.append(t.n_cells), use_threads=False)
        run_schedule(waves, lambda t: seen_thr.append(t.n_cells), use_threads=True, max_workers=4)
        assert sorted(seen_seq) == sorted(seen_thr)
        assert sum(seen_seq) == 100

    def test_invalid_worker_count(self):
        with pytest.raises(Exception):
            TileScheduler(TileDecomposition(4, 4, 2), workers=0)


class TestCPUParallelExecutor:
    @pytest.mark.parametrize("cpu_tile", [1, 3, 4, 8, 50])
    def test_matches_serial_for_any_tile_size(self, i7_2600k, cpu_tile):
        problem = SyntheticApp(dim=21, tsize=50, dsize=1).problem()
        serial = SerialExecutor(i7_2600k).execute(problem)
        parallel = CPUParallelExecutor(i7_2600k).execute(
            problem, TunableParams(cpu_tile=cpu_tile)
        )
        assert serial.matches(parallel)

    def test_threaded_execution_matches_serial(self, i7_2600k):
        problem = SyntheticApp(dim=20, tsize=50, dsize=1).problem()
        serial = SerialExecutor(i7_2600k).execute(problem)
        threaded = CPUParallelExecutor(i7_2600k, use_threads=True).execute(
            problem, TunableParams(cpu_tile=4)
        )
        assert serial.matches(threaded)

    def test_stats_report_tiles_and_workers(self, i7_2600k):
        problem = SyntheticApp(dim=16, tsize=50, dsize=1).problem()
        result = CPUParallelExecutor(i7_2600k).execute(problem, TunableParams(cpu_tile=4))
        assert result.stats["tiles_executed"] == 16
        assert result.stats["workers"] == i7_2600k.cpu.workers

    def test_gpu_settings_dropped(self, i7_2600k):
        problem = SyntheticApp(dim=16, tsize=50, dsize=1).problem()
        result = CPUParallelExecutor(i7_2600k).execute(
            problem, TunableParams.from_encoding(4, 10, 2, 8)
        )
        assert result.tunables.is_cpu_only and result.tunables.cpu_tile == 4

    def test_simulated_rtime_faster_than_serial(self, any_system):
        problem = SyntheticApp(dim=1100, tsize=500, dsize=1).problem()
        serial = SerialExecutor(any_system).execute(problem, mode="simulate")
        parallel = CPUParallelExecutor(any_system).execute(
            problem, TunableParams(cpu_tile=8), mode="simulate"
        )
        assert parallel.rtime < serial.rtime
