"""Numerical-stability tests of the shared probability-semiring helpers.

The contract under test (see :mod:`repro.runtime.compute`): exact results
across the float range — logits near ``±700`` where the naive formula
overflows/underflows — mathematical limits at the infinities (all-``-inf``
columns are empty probability sums), agreement with extended-precision
oracles (``np.longdouble`` always; ``mpmath`` when the host has it), and
**no RuntimeWarning leaks** from any edge case: every test in this module
runs under warnings-as-errors.
"""

import warnings

import numpy as np
import pytest

from repro.runtime.compute import logsumexp, logsumexp_pair, max_product_pair


@pytest.fixture(autouse=True)
def warnings_are_errors():
    """Every helper call in this module must be warning-silent."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


def oracle_pair(a, b):
    """Extended-precision log(exp(a) + exp(b)) via ``np.longdouble``.

    The shift-by-max form in longdouble (>= 64-bit mantissa on x86) carries
    enough headroom to serve as ground truth for double-precision inputs.
    """
    hi = np.maximum(a, b, dtype=np.longdouble)
    lo = np.minimum(a, b, dtype=np.longdouble)
    if np.isinf(hi):
        return float(hi)
    return float(hi + np.log1p(np.exp(lo - hi)))


class TestExtremes:
    @pytest.mark.parametrize(
        "a,b",
        [
            (700.0, 700.0),
            (700.0, -700.0),
            (-700.0, -700.0),
            (-745.0, -740.0),  # exp() underflows to subnormals here
            (709.7, 709.7),  # exp() overflows just above this
            (0.0, -745.0),
            (1e308, 1e308),
            (-1e308, -1e308),
        ],
    )
    def test_pair_matches_longdouble_oracle_at_the_edges(self, a, b):
        result = float(logsumexp_pair(a, b))
        expected = oracle_pair(a, b)
        assert result == pytest.approx(expected, rel=1e-13, abs=1e-13)

    def test_no_overflow_for_logits_near_positive_700(self):
        values = np.array([700.0, 699.0, 698.0])
        result = float(logsumexp(values))
        shifted = 700.0 + np.log(np.sum(np.exp(values - 700.0)))
        assert result == pytest.approx(shifted, rel=1e-15)

    def test_no_underflow_collapse_for_logits_near_negative_700(self):
        values = np.array([-700.0, -701.0, -702.0])
        result = float(logsumexp(values))
        assert np.isfinite(result)
        assert result == pytest.approx(-700.0 + np.log(np.sum(np.exp(values + 700.0))), rel=1e-15)

    def test_result_at_least_the_maximum_always(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(-750, 710, size=(50, 8))
        out = logsumexp(values, axis=1)
        assert np.all(out >= np.max(values, axis=1))


class TestInfinities:
    def test_both_negative_inf_is_negative_inf(self):
        assert float(logsumexp_pair(-np.inf, -np.inf)) == -np.inf

    def test_one_negative_inf_is_identity(self):
        assert float(logsumexp_pair(-np.inf, 3.25)) == 3.25
        assert float(logsumexp_pair(3.25, -np.inf)) == 3.25

    def test_positive_inf_dominates(self):
        assert float(logsumexp_pair(np.inf, -np.inf)) == np.inf
        assert float(logsumexp_pair(np.inf, np.inf)) == np.inf
        assert float(logsumexp_pair(np.inf, 0.0)) == np.inf

    def test_all_negative_inf_column_reduces_to_negative_inf(self):
        values = np.full((4, 3), -np.inf)
        values[:, 1] = [0.0, 1.0, 2.0, 3.0]
        out = logsumexp(values, axis=0)
        assert out[0] == -np.inf and out[2] == -np.inf
        assert out[1] == pytest.approx(oracle_pair(oracle_pair(0.0, 1.0), oracle_pair(2.0, 3.0)), rel=1e-12)

    def test_whole_array_of_negative_inf(self):
        assert float(logsumexp(np.full(5, -np.inf))) == -np.inf

    def test_mixed_columns_stay_columnwise_independent(self):
        values = np.array([[-np.inf, 700.0], [-np.inf, 700.0]])
        out = logsumexp(values, axis=0)
        assert out[0] == -np.inf
        assert out[1] == pytest.approx(700.0 + np.log(2.0), rel=1e-15)


class TestOracleAgreement:
    def test_pair_agrees_with_longdouble_on_random_logits(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(-720, 705, size=500)
        b = rng.uniform(-720, 705, size=500)
        got = logsumexp_pair(a, b)
        expected = np.array([oracle_pair(x, y) for x, y in zip(a, b)])
        assert np.allclose(got, expected, rtol=1e-13, atol=1e-13)

    def test_reduction_agrees_with_longdouble_on_random_columns(self):
        rng = np.random.default_rng(13)
        values = rng.uniform(-700, 700, size=(40, 6))
        got = logsumexp(values, axis=1)
        shifted = values.astype(np.longdouble)
        hi = np.max(shifted, axis=1, keepdims=True)
        expected = (hi[:, 0] + np.log(np.sum(np.exp(shifted - hi), axis=1))).astype(float)
        assert np.allclose(got, expected, rtol=1e-13, atol=1e-13)

    def test_pair_agrees_with_mpmath_oracle_when_available(self):
        mpmath = pytest.importorskip("mpmath")
        mpmath.mp.dps = 50
        cases = [(700.0, 699.5), (-745.0, -744.0), (0.0, -708.0), (123.456, -654.321)]
        for a, b in cases:
            expected = float(mpmath.log(mpmath.e**a + mpmath.e**b))
            assert float(logsumexp_pair(a, b)) == pytest.approx(expected, rel=1e-14)


class TestSemiringAlgebra:
    def test_pair_is_commutative_and_monotone(self):
        rng = np.random.default_rng(17)
        a = rng.uniform(-50, 50, size=200)
        b = rng.uniform(-50, 50, size=200)
        assert np.array_equal(logsumexp_pair(a, b), logsumexp_pair(b, a))
        assert np.all(logsumexp_pair(a, b) >= np.maximum(a, b))

    def test_pair_matches_reduction_on_two_rows(self):
        rng = np.random.default_rng(19)
        values = rng.uniform(-700, 700, size=(2, 64))
        pairwise = logsumexp_pair(values[0], values[1])
        reduced = logsumexp(values, axis=0)
        assert np.allclose(pairwise, reduced, rtol=1e-13, atol=0)

    def test_out_parameter_writes_in_place(self):
        a = np.array([1.0, -np.inf, 700.0])
        b = np.array([2.0, -np.inf, 700.0])
        out = np.empty(3)
        returned = logsumexp_pair(a, b, out=out)
        assert returned is out
        assert np.array_equal(out, logsumexp_pair(a, b))

    def test_max_product_pair_is_exact_max(self):
        a = np.array([1.0, -np.inf, 5.0])
        b = np.array([2.0, -np.inf, 4.0])
        assert np.array_equal(max_product_pair(a, b), np.maximum(a, b))
        out = np.empty(3)
        assert max_product_pair(a, b, out=out) is out
