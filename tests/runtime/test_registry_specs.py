"""Tests of the declarative :class:`~repro.runtime.registry.EngineSpec` API.

The redesigned registration path: specs declare capabilities and
availability probes, the serial-engine preference order is derived from the
specs, capability queries raise typed errors on typos, and the pre-spec
bare-class registration survives as a deprecated compatibility path.
"""

import pytest

from repro.core.exceptions import InvalidParameterError, UnknownExecutorError
from repro.runtime import EngineSpec, available_executors, engines_with
from repro.runtime.registry import (
    ENGINE_SPECS,
    EXECUTORS,
    KNOWN_CAPABILITIES,
    SERIAL_ENGINES,
    _derived_serial_engines,
    register_executor,
)
from repro.runtime.serial import SerialExecutor
from repro.runtime.vectorized import numpy_available


class TestSpecValidation:
    def test_unknown_capability_rejected_at_registration(self):
        with pytest.raises(InvalidParameterError, match="unknown capabilities"):
            EngineSpec(
                name="bad-spec",
                factory=SerialExecutor,
                capabilities=frozenset({"telepathic"}),
            )

    def test_empty_name_rejected(self):
        class Nameless(SerialExecutor):
            strategy = ""

        with pytest.raises(InvalidParameterError, match="strategy"):
            EngineSpec(name="", factory=Nameless)

    def test_availability_defaults_to_true(self):
        spec = EngineSpec(name="probe-free", factory=SerialExecutor)
        assert spec.is_available()


class TestBuiltinSpecs:
    def test_every_builtin_executor_has_a_spec(self):
        assert set(EXECUTORS) == set(ENGINE_SPECS)
        for name, spec in ENGINE_SPECS.items():
            assert spec.name == name
            assert spec.factory is EXECUTORS[name]
            assert spec.capabilities <= KNOWN_CAPABILITIES

    def test_serial_engines_derived_from_ranks(self):
        assert SERIAL_ENGINES == _derived_serial_engines()
        assert [ENGINE_SPECS[n].serial_rank for n in SERIAL_ENGINES] == sorted(
            ENGINE_SPECS[n].serial_rank for n in SERIAL_ENGINES
        )
        if numpy_available():
            assert SERIAL_ENGINES[0] == "vectorized"

    def test_pipelined_engine_registered_with_capability(self):
        assert "pipelined" in ENGINE_SPECS
        assert "pipelined" in ENGINE_SPECS["pipelined"].capabilities
        assert "pipelined" in available_executors()

    def test_multicore_capability_query(self):
        multicore = engines_with("multicore")
        assert "mp-parallel" in multicore
        assert "pipelined" in multicore
        assert "serial" not in multicore

    def test_unknown_capability_is_a_typed_error(self):
        with pytest.raises(UnknownExecutorError, match="unknown engine capability"):
            engines_with("bogus-capability")
        # Typed errors still satisfy pre-existing KeyError expectations.
        assert issubclass(UnknownExecutorError, KeyError)


class TestDeprecatedBareClassPath:
    def test_bare_class_registration_warns_and_registers(self):
        class LegacyProbe(SerialExecutor):
            strategy = "legacy-probe-executor"

        try:
            with pytest.warns(DeprecationWarning, match="bare executor class"):
                returned = register_executor(LegacyProbe)
            assert returned is LegacyProbe  # decorator-compatible
            assert EXECUTORS["legacy-probe-executor"] is LegacyProbe
            spec = ENGINE_SPECS["legacy-probe-executor"]
            assert spec.capabilities == frozenset()
            assert spec.is_available()
        finally:
            del EXECUTORS["legacy-probe-executor"]
            del ENGINE_SPECS["legacy-probe-executor"]
