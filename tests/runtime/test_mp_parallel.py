"""Tests for the shared-memory multicore backend (`mp-parallel`).

The acceptance property is cell-for-cell equality with the serial reference
for every registered application at several worker counts — including real
worker-process pools, which are exercised here even on single-core hosts by
forcing an explicit ``workers`` count.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.apps.registry import available_applications, get_application
from repro.core.exceptions import InvalidParameterError, KernelError
from repro.core.params import InputParams, TunableParams
from repro.core.pattern import FunctionKernel, WavefrontProblem
from repro.core.tiling import TileDecomposition
from repro.runtime import (
    HybridExecutor,
    MPParallelExecutor,
    MPWavefrontPool,
    SerialExecutor,
    SharedGridBuffer,
    TileSweeper,
    available_executors,
    get_executor,
    resolve_worker_count,
)
from repro.runtime.compute import compute_diagonal_range, reference_grid

HAS_FORK = "fork" in mp.get_all_start_methods()

#: Worker counts exercised against the serial reference.  Counts >= 2 run a
#: real process pool regardless of the host's core count.
WORKER_COUNTS = (1, 2, 3)


class TestEquivalenceWithSerial:
    """The acceptance property: identical grids to serial.py on every app."""

    @pytest.mark.parametrize("app_name", available_applications())
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_serial_cell_for_cell(self, app_name, workers, i7_2600k):
        dim = 21
        problem = get_application(app_name, dim=dim).problem(dim)
        serial = SerialExecutor(i7_2600k).execute(problem)
        result = MPParallelExecutor(i7_2600k, workers=workers).execute(
            problem, TunableParams(cpu_tile=6)
        )
        assert np.array_equal(serial.grid.values, result.grid.values)
        assert result.stats["cells_computed"] == dim * dim
        assert result.stats["mode"] == ("process-pool" if workers >= 2 else "in-process")

    @pytest.mark.parametrize("tile", [1, 3, 7, 64])
    def test_tile_size_does_not_change_the_grid(self, tile, small_synthetic, i7_2600k):
        serial = SerialExecutor(i7_2600k).execute(small_synthetic)
        result = MPParallelExecutor(i7_2600k, workers=2).execute(
            small_synthetic, TunableParams(cpu_tile=tile)
        )
        assert np.array_equal(serial.grid.values, result.grid.values)

    def test_generic_kernel_without_fused_evaluator(self, i7_2600k):
        # matrix-chain at an off-natural size has no fused evaluator, so the
        # workers exercise the generic kernel.diagonal() tile path.
        app = get_application("matrix-chain", dim=32)
        problem = app.problem(20)
        serial = SerialExecutor(i7_2600k).execute(problem)
        result = MPParallelExecutor(i7_2600k, workers=2).execute(
            problem, TunableParams(cpu_tile=6)
        )
        assert np.array_equal(serial.grid.values, result.grid.values)


class TestWorkerResolution:
    def test_explicit_workers_honoured(self, i7_2600k):
        assert resolve_worker_count(3, i7_2600k) == 3
        assert resolve_worker_count(0, i7_2600k) == 1

    def test_auto_falls_back_on_single_core_hosts(self, i7_2600k, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_worker_count(None, i7_2600k) == 1

    def test_auto_respects_platform_budget(self, i7_2600k, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 128)
        assert resolve_worker_count(None, i7_2600k) == i7_2600k.cpu.workers

    def test_single_core_fallback_runs_in_process(self, small_synthetic, i7_2600k, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        result = MPParallelExecutor(i7_2600k).execute(small_synthetic, TunableParams(cpu_tile=8))
        assert result.stats["mode"] == "in-process"
        assert result.stats["workers"] == 1
        assert np.array_equal(reference_grid(small_synthetic).values, result.grid.values)


class TestMPWavefrontPool:
    def test_range_execution_continues_a_scalar_prefix(self, small_synthetic):
        dim = small_synthetic.dim
        split = dim + 3
        reference = reference_grid(small_synthetic)

        grid = small_synthetic.make_grid()
        compute_diagonal_range(small_synthetic, grid, 0, split)
        with MPWavefrontPool(small_synthetic, grid, tile=5, workers=2) as pool:
            assert pool.is_multiprocess
            _, cells = pool.run_range(split + 1, 2 * dim - 2)
        assert cells > 0
        assert np.array_equal(reference.values, grid.values)

    def test_empty_range_is_noop(self, small_synthetic):
        grid = small_synthetic.make_grid()
        with MPWavefrontPool(small_synthetic, grid, tile=4, workers=1) as pool:
            assert pool.run_range(5, 4) == (0, 0)
        assert np.all(grid.values == 0.0)

    def test_grid_restored_to_private_memory_after_close(self, small_synthetic):
        grid = small_synthetic.make_grid()
        original = grid.values
        pool = MPWavefrontPool(small_synthetic, grid, tile=8, workers=2)
        assert grid.values is not original  # shared view while the pool lives
        pool.run_range(0, 2 * small_synthetic.dim - 2)
        pool.close()
        assert grid.values is original
        assert np.array_equal(reference_grid(small_synthetic).values, grid.values)

    @pytest.mark.skipif(not HAS_FORK, reason="lambda kernels need fork inheritance")
    def test_worker_kernel_error_propagates(self, i7_2600k):
        kernel = FunctionKernel(
            lambda i, j, w, n, nw: np.full(i.shape, np.inf), tsize=1.0, name="bad"
        )
        problem = WavefrontProblem(dim=12, kernel=kernel)
        with pytest.raises(KernelError):
            MPParallelExecutor(i7_2600k, workers=2).execute(problem, TunableParams(cpu_tile=4))


class TestTileSweeper:
    def test_whole_grid_single_tile_matches_reference(self, small_synthetic):
        grid = small_synthetic.make_grid()
        decomp = TileDecomposition(small_synthetic.dim, small_synthetic.dim, small_synthetic.dim)
        cells = TileSweeper(small_synthetic).sweep_grid(grid, decomp)
        assert cells == small_synthetic.dim**2
        assert np.array_equal(reference_grid(small_synthetic).values, grid.values)

    def test_fused_evaluator_used_where_available(self, small_synthetic):
        assert TileSweeper(small_synthetic).fused is True

    def test_clipped_tile_sweep_counts_only_range_cells(self, small_synthetic):
        grid = small_synthetic.make_grid()
        sweeper = TileSweeper(small_synthetic)
        decomp = TileDecomposition(small_synthetic.dim, small_synthetic.dim, small_synthetic.dim)
        tile = decomp.tile_at(0, 0)
        # Diagonals 0..2 of the whole grid: 1 + 2 + 3 cells.
        cells = sweeper.sweep_tile(grid.values.reshape(-1), tile, 0, 2)
        assert cells == 6


class TestSharedGridBuffer:
    def test_create_attach_roundtrip(self):
        with SharedGridBuffer.create(8) as owner:
            owner.values[3, 4] = 42.0
            attached = SharedGridBuffer.attach(owner.name, 8)
            assert attached.values[3, 4] == 42.0
            attached.values[0, 0] = -1.0
            assert owner.values[0, 0] == -1.0  # same memory
            attached.close()

    def test_only_owner_may_unlink(self):
        owner = SharedGridBuffer.create(4)
        attached = SharedGridBuffer.attach(owner.name, 4)
        with pytest.raises(InvalidParameterError):
            attached.unlink()
        attached.close()
        owner.close()
        owner.unlink()

    def test_closed_buffer_rejects_access(self):
        buffer = SharedGridBuffer.create(4)
        buffer.close()
        buffer.unlink()
        with pytest.raises(InvalidParameterError):
            _ = buffer.values


class TestHybridMPEngine:
    def test_hybrid_mp_engine_produces_identical_grid(self, small_synthetic, i7_2600k):
        tunables = TunableParams.from_encoding(cpu_tile=4, band=6, halo=2, gpu_tile=4)
        scalar = HybridExecutor(i7_2600k).execute(small_synthetic, tunables)
        pooled = HybridExecutor(i7_2600k, cpu_engine="mp", workers=2).execute(
            small_synthetic, tunables
        )
        assert np.array_equal(scalar.grid.values, pooled.grid.values)
        assert pooled.stats["cpu_workers"] == 2

    def test_hybrid_rejects_unknown_engine(self, i7_2600k):
        with pytest.raises(InvalidParameterError):
            HybridExecutor(i7_2600k, cpu_engine="fpga")


class TestRegistryAndCostModel:
    def test_mp_parallel_registered(self, i7_2600k):
        assert "mp-parallel" in available_executors()
        executor = get_executor("mp-parallel", i7_2600k, workers=2)
        assert isinstance(executor, MPParallelExecutor)
        assert executor.workers == 2

    def test_simulated_rtime_improves_with_workers(self, i7_2600k):
        model = MPParallelExecutor(i7_2600k).cost_model
        params = InputParams(dim=1900, tsize=750, dsize=1)
        t2 = model.mp_parallel_time(params, 64, 2)
        t8 = model.mp_parallel_time(params, 64, 8)
        assert t8 < t2

    def test_single_worker_prediction_is_the_vectorized_engine(self, i7_2600k):
        model = MPParallelExecutor(i7_2600k).cost_model
        params = InputParams(dim=512, tsize=100, dsize=1)
        assert model.mp_parallel_time(params, 8, 1) == model.vectorized_time(params)

    def test_parallel_efficiency_term_bounded(self, i7_2600k):
        model = MPParallelExecutor(i7_2600k).cost_model
        params = InputParams(dim=256, tsize=100, dsize=1)
        eff = model.mp_parallel_efficiency(params, 32, 4)
        assert 0.0 < eff <= 1.0
        # A huge tile exposes almost no tile-parallelism.
        assert model.mp_parallel_efficiency(params, 256, 4) <= eff


class TestSearchSpaceDimensions:
    def test_worker_counts_cover_the_platform_budget(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        space = SearchSpace(tiny_space, i7_2600k)
        counts = space.worker_counts
        assert counts[0] == 1
        assert counts[-1] == i7_2600k.cpu.workers
        assert all(b > a for a, b in zip(counts, counts[1:]))

    def test_cpu_backends_include_mp(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        space = SearchSpace(tiny_space, i7_2600k)
        assert "mp-parallel" in space.cpu_backends
        info = space.describe()
        assert "cpu_backends" in info and "worker_counts" in info

    def test_best_cpu_backend_is_multicore_for_large_coarse_instances(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        # Pipelined dispatch drops the per-wave straggler wait, so its cost
        # estimate dominates barriered mp-parallel whenever multicore wins.
        space = SearchSpace(tiny_space, i7_2600k)
        backend, workers = space.best_cpu_backend(InputParams(dim=1900, tsize=750, dsize=1))
        assert backend == "pipelined"
        assert workers > 1

    def test_best_cpu_backend_co_optimises_the_tile(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        # dim=2700/tsize=100 only wins for the multicore backends at coarse
        # tiles: a hardwired cache-sized tile (8) would mis-select vectorized.
        space = SearchSpace(tiny_space, i7_2600k)
        params = InputParams(dim=2700, tsize=100, dsize=1)
        assert space.best_cpu_backend(params)[0] in ("mp-parallel", "pipelined")
        assert space.best_cpu_backend(params, cpu_tile=8)[0] == "vectorized"

    def test_best_cpu_backend_stays_single_core_for_tiny_instances(self, tiny_space, i7_2600k):
        from repro.autotuner.search_space import SearchSpace

        space = SearchSpace(tiny_space, i7_2600k)
        backend, workers = space.best_cpu_backend(InputParams(dim=32, tsize=1, dsize=1))
        assert backend in ("serial", "vectorized")
        assert workers == 1

    def test_tuner_selects_cpu_backend(self, trained_tuner_i7):
        params = InputParams(dim=1900, tsize=750, dsize=1)
        backend, workers = trained_tuner_i7.select_cpu_backend(params)
        assert backend in ("serial", "vectorized", "mp-parallel", "pipelined")
        assert workers >= 1
        if backend in ("mp-parallel", "pipelined"):
            assert workers == trained_tuner_i7.select_workers(params)
