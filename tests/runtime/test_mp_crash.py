"""Crash recovery of the multiprocessing backend.

A worker process killed mid-service must surface as a typed
``WorkerCrashError`` (never a hang or a bare ``BrokenProcessPool``), mark
the pool broken, and cost exactly one request: the ``EngineHost`` hands
out a fresh pool on the next borrow and the broken pool's shared-memory
segment is unlinked, not leaked.
"""

import multiprocessing as mp
import os
import signal

import numpy as np
import pytest

from repro.core.exceptions import WorkerCrashError
from repro.runtime import MPWavefrontPool
from repro.runtime.compute import reference_grid
from repro.runtime.lifecycle import EngineHost

HAS_SHM_DIR = os.path.isdir("/dev/shm")
HAS_FORK = "fork" in mp.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="worker-kill tests need a forking platform"
)


def kill_one_worker(pool):
    """SIGKILL one live worker process of a bound multiprocess pool.

    ``ProcessPoolExecutor`` spawns its workers lazily, so the pool is
    warmed with one tiny sweep first — which also proves the kill (not a
    cold pool) is what breaks the subsequent run.
    """
    pool.run_range(0, 0)
    pid = next(iter(pool._pool._processes))
    os.kill(pid, signal.SIGKILL)


class TestWorkerCrashRecovery:
    def test_killed_worker_raises_typed_error_not_hang(self, small_synthetic):
        grid = small_synthetic.make_grid()
        pool = MPWavefrontPool(small_synthetic, grid, tile=4, workers=2)
        try:
            assert pool.is_multiprocess and not pool.broken
            kill_one_worker(pool)
            with pytest.raises(WorkerCrashError):
                pool.run_range(0, 2 * small_synthetic.dim - 2)
            assert pool.broken
        finally:
            pool.close()

    def test_engine_host_replaces_a_broken_pool(self, small_synthetic, i7_2600k):
        with EngineHost(i7_2600k) as host:
            pool = host.pool_for(small_synthetic, tile=4, workers=2)
            grid = small_synthetic.make_grid()
            pool.bind(grid)
            kill_one_worker(pool)
            with pytest.raises(WorkerCrashError):
                pool.run_range(0, 2 * small_synthetic.dim - 2)
            pool.release()
            assert pool.broken

            fresh = host.pool_for(small_synthetic, tile=4, workers=2)
            assert fresh is not pool
            assert not fresh.broken

            # The replacement pool serves the next request correctly.
            grid = small_synthetic.make_grid()
            fresh.bind(grid)
            fresh.run_range(0, 2 * small_synthetic.dim - 2)
            fresh.release()
            assert np.array_equal(
                reference_grid(small_synthetic).values, grid.values
            )

    @pytest.mark.skipif(not HAS_SHM_DIR, reason="needs a /dev/shm to audit")
    def test_no_shared_memory_segments_leak_after_crash(
        self, small_synthetic, i7_2600k
    ):
        before = set(os.listdir("/dev/shm"))
        host = EngineHost(i7_2600k)
        try:
            pool = host.pool_for(small_synthetic, tile=4, workers=2)
            grid = small_synthetic.make_grid()
            pool.bind(grid)
            kill_one_worker(pool)
            with pytest.raises(WorkerCrashError):
                pool.run_range(0, 2 * small_synthetic.dim - 2)
            pool.release()
            # Replacing the broken pool closes it (unlinking its segment).
            host.pool_for(small_synthetic, tile=4, workers=2)
        finally:
            host.close()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
