"""Property-based tests (hypothesis) for the core geometric invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import diagonal as dg
from repro.core.params import InputParams, TunableParams
from repro.core.partition import count_halo_swaps, partition_diagonal, swap_interval
from repro.core.plan import ThreePhasePlan
from repro.core.tiling import TileDecomposition

dims = st.integers(min_value=2, max_value=200)
small_dims = st.integers(min_value=2, max_value=60)


class TestDiagonalProperties:
    @given(rows=st.integers(1, 100), cols=st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_diagonal_lengths_sum_to_cells(self, rows, cols):
        lengths = dg.diagonal_lengths(rows, cols)
        assert int(lengths.sum()) == rows * cols
        assert int(lengths.max()) == min(rows, cols)

    @given(dim=dims, d=st.integers(0, 400))
    @settings(max_examples=50, deadline=None)
    def test_cells_before_diagonal_monotone(self, dim, d):
        d = min(d, 2 * dim - 2)
        before = dg.cells_before_diagonal(d, dim)
        after = dg.cells_before_diagonal(d + 1, dim)
        assert after - before == dg.diagonal_length(d, dim, dim)

    @given(dim=dims, band=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_band_range_symmetric_and_clipped(self, dim, band):
        lo, hi = dg.band_diagonal_range(dim, band)
        assert 0 <= lo <= dim - 1 <= hi <= 2 * dim - 2
        # The band is centred on the main diagonal (clipping preserves symmetry
        # because the grid itself is symmetric around it).
        assert (dim - 1) - lo == hi - (dim - 1)


class TestPlanProperties:
    @given(
        dim=small_dims,
        band=st.integers(-1, 300),
        cpu_tile=st.integers(1, 16),
        halo=st.integers(-1, 50),
        gpu_tile=st.sampled_from([1, 4, 8, 16]),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_plan_partitions_the_grid(self, dim, band, cpu_tile, halo, gpu_tile):
        params = InputParams(dim=dim, tsize=10, dsize=1)
        tunables = TunableParams.from_encoding(cpu_tile, band, halo if band >= 0 else -1, gpu_tile)
        plan = ThreePhasePlan(params, tunables)
        cells = plan.cells_per_phase()
        assert sum(cells.values()) == dim * dim
        spans = [s for s in plan.spans if not s.is_empty]
        covered = sorted(d for s in spans for d in range(s.lo, s.hi + 1))
        assert covered == list(range(2 * dim - 1))


class TestTilingProperties:
    @given(rows=st.integers(1, 80), cols=st.integers(1, 80), tile=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_grid_once(self, rows, cols, tile):
        decomp = TileDecomposition(rows, cols, tile)
        total = sum(t.n_cells for t in decomp.all_tiles())
        assert total == rows * cols
        assert int(decomp.tiles_per_diagonal().sum()) == decomp.n_tiles

    @given(rows=st.integers(2, 60), tile=st.integers(1, 10), workers=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_wavefront_waves_bounds(self, rows, tile, workers):
        decomp = TileDecomposition(rows, rows, tile)
        waves = decomp.wavefront_waves(workers)
        assert decomp.n_tile_diagonals <= waves <= decomp.n_tiles


class TestPartitionProperties:
    @given(length=st.integers(1, 500), gpus=st.sampled_from([1, 2]), halo=st.integers(0, 60))
    @settings(max_examples=100, deadline=None)
    def test_partition_owns_each_cell_exactly_once(self, length, gpus, halo):
        parts = partition_diagonal(length, gpus, halo)
        owned = [k for p in parts for k in range(p.own_start, p.own_stop)]
        assert owned == list(range(length))
        for p in parts:
            assert 0 <= p.compute_start <= p.compute_stop <= length

    @given(n_diags=st.integers(1, 400), halo=st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_swap_count_bounds(self, n_diags, halo):
        swaps = count_halo_swaps(n_diags, halo)
        assert 0 <= swaps <= max(0, n_diags - 1)
        assert swaps <= -(-n_diags // swap_interval(halo))


class TestTunableProperties:
    @given(
        dim=dims,
        cpu_tile=st.integers(1, 64),
        band=st.integers(-1, 10_000),
        halo=st.integers(-1, 5_000),
        gpu_tile=st.integers(1, 64),
    )
    @settings(max_examples=100, deadline=None)
    def test_clipping_is_idempotent_and_legal(self, dim, cpu_tile, band, halo, gpu_tile):
        tunables = TunableParams.from_encoding(cpu_tile, band, halo if band >= 0 else -1, gpu_tile)
        clipped = tunables.clipped(dim)
        assert clipped.clipped(dim) == clipped
        assert clipped.band <= dim - 1
        if clipped.gpu_count == 2:
            assert clipped.halo <= max(0, (dim - clipped.band) // 2)
