"""Property-based tests (hypothesis) of the cache key codec and disk store.

The cache is only sound if the key codec is *canonical* — every
representation of the same request must hash identically, and different
requests must hash differently — and if the disk tier returns bit-exact
grids.  Both are checked as properties here, plus a store→load round-trip
over every registered application.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import available_applications
from repro.cache import (
    KEY_CODEC_VERSION,
    CacheKey,
    DiskCacheStore,
    canonicalize,
    request_key,
)
from repro.core.exceptions import CacheError
from repro.core.params import TunableParams
from repro.session import Session

#: JSON-representable scalar leaves of override mappings.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)

#: Override mappings the way callers pass them (string keys, scalar-ish values).
override_maps = st.dictionaries(
    keys=st.text(min_size=1, max_size=10),
    values=st.one_of(scalars, st.lists(scalars, max_size=4)),
    max_size=6,
)


class TestKeyCodecProperties:
    @given(overrides=override_maps)
    @settings(max_examples=80, deadline=None)
    def test_dict_ordering_never_changes_the_key(self, overrides):
        """Insertion order of override mappings must not leak into the digest."""
        reordered = dict(sorted(overrides.items(), reverse=True))
        key_a = request_key("lcs", 64, overrides=overrides)
        key_b = request_key("lcs", 64, overrides=reordered)
        assert key_a.digest == key_b.digest
        assert key_a.payload == key_b.payload

    @given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_numpy_integers_equal_python_integers(self, value):
        for np_type in (np.int32, np.int64):
            assert canonicalize(np_type(value)) == canonicalize(value)
            assert (
                request_key("lcs", 32, overrides={"x": np_type(value)}).digest
                == request_key("lcs", 32, overrides={"x": value}).digest
            )

    @given(value=st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=60, deadline=None)
    def test_numpy_floats_equal_python_floats(self, value):
        as_np = np.float64(float(value))
        assert canonicalize(as_np) == canonicalize(float(value))

    @given(flag=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_numpy_bools_equal_python_bools(self, flag):
        assert canonicalize(np.bool_(flag)) == canonicalize(flag)
        # And bools never collapse into the integers they resemble (compare
        # the JSON encodings: Python's True == 1 would hide the difference).
        assert json.dumps(canonicalize(flag)) != json.dumps(canonicalize(int(flag)))

    @given(items=st.lists(scalars, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_tuple_and_list_flavours_are_identical(self, items):
        assert canonicalize(tuple(items)) == canonicalize(list(items))

    @given(
        dim_a=st.integers(min_value=2, max_value=4096),
        dim_b=st.integers(min_value=2, max_value=4096),
    )
    @settings(max_examples=80, deadline=None)
    def test_distinct_instances_get_distinct_keys(self, dim_a, dim_b):
        key_a = request_key("lcs", dim_a)
        key_b = request_key("lcs", dim_b)
        assert (key_a.digest == key_b.digest) == (dim_a == dim_b)

    @given(dim=st.integers(min_value=2, max_value=1024))
    @settings(max_examples=40, deadline=None)
    def test_distinct_apps_get_distinct_keys(self, dim):
        digests = {request_key(app, dim).digest for app in available_applications()}
        assert len(digests) == len(available_applications())

    @given(overrides=override_maps, dim=st.integers(min_value=2, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_payload_is_canonical_json(self, overrides, dim):
        """The payload round-trips through JSON to itself (no lossy leaves)."""
        key = request_key("lcs", dim, overrides=overrides)
        assert isinstance(key, CacheKey)
        assert json.loads(json.dumps(key.payload, sort_keys=True)) == key.payload
        assert key.payload["codec"] == KEY_CODEC_VERSION
        assert len(key.digest) == 64 and set(key.digest) <= set("0123456789abcdef")

    @given(dim=st.integers(min_value=2, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_mode_and_overrides_enter_the_key(self, dim):
        base = request_key("lcs", dim)
        assert request_key("lcs", dim, mode="simulate").digest != base.digest
        assert (
            request_key("lcs", dim, overrides={"backend": "serial"}).digest
            != base.digest
        )
        assert (
            request_key("lcs", dim, overrides={"tunables": TunableParams(cpu_tile=4)}).digest
            != base.digest
        )

    def test_unsupported_values_raise_cache_error(self):
        with pytest.raises(CacheError):
            canonicalize(object())
        with pytest.raises(CacheError):
            request_key("lcs", 32, overrides={"x": object()})
        with pytest.raises(CacheError):
            canonicalize(float("nan"))
        with pytest.raises(CacheError):
            canonicalize({1: "non-string key"})


class TestStoreRoundTripProperties:
    @pytest.mark.parametrize("app", available_applications())
    def test_roundtrip_is_bit_exact_for_every_registered_app(self, app, tmp_path):
        """store→load returns the identical grid for every application."""
        with Session(system="i7-2600K") as session:
            result = session.solve(app, 20, backend="serial")
        store = DiskCacheStore(tmp_path / app)
        key = request_key(app, 20, overrides={"backend": "serial"})
        store.put(key.digest, result, request=key.payload)
        loaded = store.get(key.digest)
        assert loaded is not None
        assert loaded.grid.values.dtype == result.grid.values.dtype
        assert np.array_equal(loaded.grid.values, result.grid.values)
        assert np.array_equal(loaded.grid.meta, result.grid.meta)
        if result.grid.payload is not None:
            assert np.array_equal(loaded.grid.payload, result.grid.payload)
        assert loaded.params == result.params
        assert loaded.tunables.features() == result.tunables.features()
        assert loaded.mode == result.mode
        assert loaded.rtime == pytest.approx(result.rtime)
