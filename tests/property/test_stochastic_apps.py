"""Differential battery (hypothesis) of the probabilistic application family.

Every app is checked against an independent O(n*k^2) pure-Python reference
on small random instances — the reference iterates the *full* transition /
predecessor structure with ``-inf`` for disallowed moves, so it shares no
vectorisation shortcuts with the kernels under test:

* **viterbi** — max-product in log space: ``max`` introduces no rounding,
  so grid values AND the decoded witness path are compared **bit-exactly**
  (ties included; the reference scans predecessor states in ascending
  order and keeps the first maximum, which is the documented tie rule).
* **stochastic-path** — log-space sums round, so values are ``allclose``
  with ``rtol=atol=1e-10`` (both sides shift by the pairwise max before
  exponentiating; at the battery's dims the error is a few ulps, the
  tolerance leaves three orders of headroom).  The witness is compared
  exactly whenever every decision along the engine's path has margin
  ``> 1e-6`` (a rounding-tight tie may legitimately flip between the two
  arithmetics); its structural invariants hold unconditionally.
* **knapsack-ev** — the first-moment DP and its decisions are bit-exact
  (identical IEEE adds and ``>=`` comparisons on both sides), hence the
  witness (the taken-item set) is compared exactly; the second-moment grid
  associates ``M2 + 2*M1*ev + ev2`` differently between the reference and
  the kernel's precomputed increment table, so values are ``allclose``
  with ``rtol=atol=1e-10``.

The final class is the acceptance sweep: 1000+ seeded HMM instances whose
decoded path must match the brute-force argmax path exactly.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.knapsack import ExpectedKnapsackApp
from repro.apps.stochastic_path import StochasticPathApp
from repro.apps.viterbi import ViterbiApp
from repro.runtime.compute import reference_grid

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dims = st.integers(min_value=2, max_value=10)


# ----------------------------------------------------------------------
# Pure-Python references (full O(n*k^2) predecessor scans)
# ----------------------------------------------------------------------
def brute_viterbi(kernel, dim):
    """Full-transition-matrix Viterbi with ascending-state argmax."""
    n = kernel.log_pi.size
    trans = np.full((dim, dim), -np.inf)
    for s in range(dim):
        trans[s, s] = kernel.log_stay[s % n]
        if s + 1 < dim:
            trans[s, s + 1] = kernel.log_adv[(s + 1) % n]

    def emit(t, j):
        return kernel.log_emit[t % kernel.log_emit.shape[0], j % kernel.log_emit.shape[1]]

    values = np.empty((dim, dim))
    backptr = np.zeros((dim, dim), dtype=np.int64)
    for j in range(dim):
        values[0, j] = kernel.log_pi[j % n] + emit(0, j)
    for t in range(1, dim):
        for j in range(dim):
            best, arg = -np.inf, 0
            for s in range(dim):  # ascending scan keeps the first maximum
                score = values[t - 1, s] + trans[s, j]
                if score > best:
                    best, arg = score, s
            values[t, j] = emit(t, j) + best
            backptr[t, j] = arg
    path = np.empty(dim, dtype=np.int64)
    path[-1] = int(np.argmax(values[-1]))
    for t in range(dim - 1, 0, -1):
        path[t - 1] = backptr[t, path[t]]
    return values, path


def brute_stochastic_path(kernel, dim):
    """Cell-by-cell log-space mixture via ``math`` (not the shared helper)."""

    def cost(i, j):
        return kernel.costs[i % kernel.costs.shape[0], j % kernel.costs.shape[1]]

    def p_west(i, j):
        return kernel.p_west[i % kernel.p_west.shape[0], j % kernel.p_west.shape[1]]

    values = np.empty((dim, dim))
    for i in range(dim):
        for j in range(dim):
            if i == 0 and j == 0:
                mixed = 0.0
            elif i == 0:
                mixed = values[i, j - 1]
            elif j == 0:
                mixed = values[i - 1, j]
            else:
                west = math.log(p_west(i, j)) + values[i, j - 1]
                north = math.log(1.0 - p_west(i, j)) + values[i - 1, j]
                high = max(west, north)
                mixed = high + math.log(math.exp(west - high) + math.exp(north - high))
            values[i, j] = mixed - cost(i, j)
    path = []
    margin = math.inf
    i = j = dim - 1
    while True:
        path.append(i * dim + j)
        if i == 0 and j == 0:
            break
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            west = math.log(p_west(i, j)) + values[i, j - 1]
            north = math.log(1.0 - p_west(i, j)) + values[i - 1, j]
            margin = min(margin, abs(west - north))
            if west >= north:  # (west, north) scan order keeps west on ties
                j -= 1
            else:
                i -= 1
    return values, np.array(path[::-1], dtype=np.int64), margin


def brute_expected_knapsack(kernel, dim):
    """Pure-Python moment DP: M1 policy (ties take), then M2 under it."""
    n = kernel.values.size
    value = [float(kernel.values[i % n]) for i in range(dim)]
    prob = [float(kernel.probs[i % n]) for i in range(dim)]
    m1 = [[0.0] * dim for _ in range(dim + 1)]
    take = [[False] * dim for _ in range(dim)]
    for r in range(1, dim + 1):
        gain = prob[r - 1] * value[r - 1]
        for w in range(dim):
            skip = m1[r - 1][w]
            taken = w >= 1 and m1[r - 1][w - 1] + gain >= skip
            take[r - 1][w] = taken
            m1[r][w] = m1[r - 1][w - 1] + gain if taken else skip
    m2 = [[0.0] * dim for _ in range(dim + 1)]
    for r in range(1, dim + 1):
        gain = prob[r - 1] * value[r - 1]
        gain2 = prob[r - 1] * value[r - 1] * value[r - 1]
        for w in range(dim):
            if take[r - 1][w]:
                m2[r][w] = m2[r - 1][w - 1] + 2.0 * m1[r - 1][w - 1] * gain + gain2
            else:
                m2[r][w] = m2[r - 1][w]
    items = []
    i, j = dim - 1, dim - 1
    while i >= 0:
        if take[i][j]:
            items.append(i % n)
            j -= 1
        i -= 1
    return np.array(m2[1:]), np.array(items[::-1], dtype=np.int64)


# ----------------------------------------------------------------------
# The battery (>= 200 cases per app)
# ----------------------------------------------------------------------
class TestViterbiDifferential:
    @given(seed=seeds, dim=dims)
    @settings(max_examples=200, deadline=None)
    def test_grid_and_witness_bit_exact_vs_brute_force(self, seed, dim):
        problem = ViterbiApp(dim=dim, seed=seed).problem(dim)
        grid = reference_grid(problem)
        expected_values, expected_path = brute_viterbi(problem.kernel, dim)
        assert np.array_equal(grid.values, expected_values), (
            "max-product grids must be bit-exact"
        )
        witness = problem.kernel.reconstruct_witness(grid.values)
        assert witness.dtype == np.int64
        assert np.array_equal(witness, expected_path), (
            "decoded state path must match the ascending-argmax reference"
        )

    @given(seed=seeds, dim=dims)
    @settings(max_examples=50, deadline=None)
    def test_witness_is_a_valid_bakis_path(self, seed, dim):
        problem = ViterbiApp(dim=dim, seed=seed).problem(dim)
        witness = problem.kernel.reconstruct_witness(reference_grid(problem).values)
        assert witness.shape == (dim,)
        assert np.all((witness >= 0) & (witness < dim))
        steps = np.diff(witness)
        assert np.all((steps == 0) | (steps == 1)), "only stay/advance moves"


class TestStochasticPathDifferential:
    #: Documented value tolerance: both arithmetics shift by the pairwise
    #: max before exponentiating, leaving only a few ulps of divergence.
    RTOL = ATOL = 1e-10
    #: Decisions closer than this may legitimately flip between the two
    #: arithmetics; the exact-witness comparison is gated on it.
    DECISION_MARGIN = 1e-6

    @given(seed=seeds, dim=dims)
    @settings(max_examples=200, deadline=None)
    def test_grid_allclose_and_witness_vs_brute_force(self, seed, dim):
        problem = StochasticPathApp(dim=dim, seed=seed).problem(dim)
        grid = reference_grid(problem)
        expected_values, expected_path, margin = brute_stochastic_path(
            problem.kernel, dim
        )
        assert np.allclose(grid.values, expected_values, rtol=self.RTOL, atol=self.ATOL)
        witness = problem.kernel.reconstruct_witness(grid.values)
        # Structural invariants hold for every instance.
        assert witness.shape == (2 * dim - 1,)
        assert witness[0] == 0 and witness[-1] == dim * dim - 1
        steps = np.diff(witness)
        assert np.all((steps == 1) | (steps == dim)), "only east/south moves"
        if margin > self.DECISION_MARGIN:
            assert np.array_equal(witness, expected_path)


class TestExpectedKnapsackDifferential:
    #: Documented value tolerance: the reference associates the moment
    #: update differently from the kernel's precomputed increment table.
    RTOL = ATOL = 1e-10

    @given(seed=seeds, dim=dims)
    @settings(max_examples=200, deadline=None)
    def test_grid_allclose_and_witness_exact_vs_brute_force(self, seed, dim):
        problem = ExpectedKnapsackApp(dim=dim, seed=seed).problem(dim)
        grid = reference_grid(problem)
        expected_values, expected_items = brute_expected_knapsack(problem.kernel, dim)
        assert np.allclose(grid.values, expected_values, rtol=self.RTOL, atol=self.ATOL)
        # The M1 policy is bit-exact on both sides, so the taken-item set is
        # compared exactly — including the ties-take rule.
        witness = problem.kernel.reconstruct_witness(grid.values)
        assert np.array_equal(witness, expected_items)

    @given(seed=seeds, dim=dims)
    @settings(max_examples=50, deadline=None)
    def test_first_moment_matches_the_plain_knapsack_shape(self, seed, dim):
        """M1 is monotone in both items considered and capacity."""
        kernel = ExpectedKnapsackApp(dim=dim, seed=seed).problem(dim).kernel
        m1 = kernel.first_moment(dim)
        assert np.all(np.diff(m1, axis=0) >= 0)
        assert np.all(np.diff(m1, axis=1) >= 0)
        assert np.all(m1[:, 0] == 0.0), "capacity 0 holds nothing"


# ----------------------------------------------------------------------
# Acceptance: >= 1000 seeded instances, exact decoded paths
# ----------------------------------------------------------------------
class TestViterbiAcceptanceSweep:
    def test_1000_seeded_instances_decode_exactly(self):
        """The ISSUE's acceptance criterion, run as one deterministic sweep.

        1050 instances across dims 4..10 (150 seeds each); every decoded
        path must equal the brute-force argmax path with deterministic
        ties.  Small dims keep the O(n*k^2) reference affordable while the
        modulo-tiled emission tables still generate genuine ties.
        """
        checked = 0
        for dim in range(4, 11):
            for seed in range(150):
                problem = ViterbiApp(dim=dim, seed=seed).problem(dim)
                grid = reference_grid(problem)
                expected_values, expected_path = brute_viterbi(problem.kernel, dim)
                assert np.array_equal(grid.values, expected_values), (seed, dim)
                witness = problem.kernel.reconstruct_witness(grid.values)
                assert np.array_equal(witness, expected_path), (seed, dim)
                checked += 1
        assert checked >= 1000
