"""Property-based tests of the tile-wavefront schedules.

The multicore backend's correctness rests on two schedule invariants,
checked here for arbitrary grids, tile sizes and worker counts:

* every tile is executed exactly once, in a wave that respects the tile
  wavefront (waves are tile-diagonals in increasing order);
* range-clipped schedules (the hybrid executor's partial CPU phases) cover
  exactly the tiles intersecting the requested cell-diagonal range, again
  exactly once.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.tiling import TileDecomposition
from repro.runtime.scheduler import TileScheduler, tile_intersects_range

grid_sides = st.integers(min_value=1, max_value=40)
tiles = st.integers(min_value=1, max_value=12)
workers = st.integers(min_value=1, max_value=9)


def _tile_key(tile):
    return (tile.tile_row, tile.tile_col)


class TestFullSchedule:
    @given(rows=grid_sides, cols=grid_sides, tile=tiles, n_workers=workers)
    @settings(max_examples=80, deadline=None)
    def test_each_tile_scheduled_exactly_once(self, rows, cols, tile, n_workers):
        decomp = TileDecomposition(rows, cols, tile)
        scheduler = TileScheduler(decomp, workers=n_workers)
        seen = Counter(
            _tile_key(item.tile) for wave in scheduler.waves() for item in wave
        )
        assert len(seen) == decomp.n_tiles
        assert all(count == 1 for count in seen.values())

    @given(rows=grid_sides, cols=grid_sides, tile=tiles, n_workers=workers)
    @settings(max_examples=80, deadline=None)
    def test_waves_are_tile_diagonals_in_order(self, rows, cols, tile, n_workers):
        decomp = TileDecomposition(rows, cols, tile)
        scheduler = TileScheduler(decomp, workers=n_workers)
        for wave in scheduler.waves():
            # All tiles of one wave are mutually independent: they share one
            # tile-diagonal, and the wave index is that diagonal.
            diagonals = {item.tile.tile_row + item.tile.tile_col for item in wave}
            assert diagonals == {wave[0].wave}
            assert all(0 <= item.worker < n_workers for item in wave)

    @given(rows=grid_sides, cols=grid_sides, tile=tiles, n_workers=workers)
    @settings(max_examples=60, deadline=None)
    def test_worker_loads_sum_to_tile_count(self, rows, cols, tile, n_workers):
        decomp = TileDecomposition(rows, cols, tile)
        scheduler = TileScheduler(decomp, workers=n_workers)
        assert sum(scheduler.worker_loads()) == decomp.n_tiles


class TestRangeClippedSchedule:
    @given(
        dim=st.integers(min_value=2, max_value=40),
        tile=tiles,
        n_workers=workers,
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_clipped_schedule_covers_intersecting_tiles_exactly_once(
        self, dim, tile, n_workers, data
    ):
        last = 2 * dim - 2
        d_lo = data.draw(st.integers(0, last), label="d_lo")
        d_hi = data.draw(st.integers(d_lo, last), label="d_hi")
        decomp = TileDecomposition(dim, dim, tile)
        scheduler = TileScheduler(decomp, workers=n_workers)

        expected = {
            _tile_key(t) for t in decomp.all_tiles() if tile_intersects_range(t, d_lo, d_hi)
        }
        seen = Counter(
            _tile_key(item.tile)
            for wave in scheduler.waves(d_lo, d_hi)
            for item in wave
        )
        assert set(seen) == expected
        assert all(count == 1 for count in seen.values())
        # Clipping never produces empty waves (no wasted barriers).
        assert all(wave for wave in scheduler.waves(d_lo, d_hi))

    @given(dim=st.integers(min_value=2, max_value=40), tile=tiles, n_workers=workers)
    @settings(max_examples=60, deadline=None)
    def test_full_range_clip_equals_unclipped_schedule(self, dim, tile, n_workers):
        decomp = TileDecomposition(dim, dim, tile)
        scheduler = TileScheduler(decomp, workers=n_workers)
        full = scheduler.waves()
        clipped = scheduler.waves(0, 2 * dim - 2)
        assert full == clipped
