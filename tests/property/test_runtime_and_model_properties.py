"""Property-based tests for executor correctness and cost-model sanity."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import SyntheticApp
from repro.core.params import InputParams, TunableParams
from repro.hardware import platforms
from repro.hardware.costmodel import CostModel
from repro.runtime.hybrid import HybridExecutor
from repro.runtime.compute import reference_grid
from repro.ml.dataset import Dataset
from repro.ml.tree.m5p import M5ModelTree
from repro.ml.tree.reptree import REPTree


class TestHybridFunctionalEquivalence:
    """The reproduction's central invariant, explored over random configurations."""

    @given(
        dim=st.integers(8, 28),
        band=st.integers(-1, 40),
        cpu_tile=st.integers(1, 10),
        halo=st.integers(-1, 8),
        gpu_tile=st.sampled_from([1, 4, 8]),
        dsize=st.sampled_from([0, 1, 5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_hybrid_equals_serial_for_random_configs(self, dim, band, cpu_tile, halo, gpu_tile, dsize):
        problem = SyntheticApp(dim=dim, tsize=10, dsize=dsize).problem()
        tunables = TunableParams.from_encoding(
            cpu_tile, band, halo if band >= 0 else -1, gpu_tile
        )
        system = platforms.I7_2600K
        expected = reference_grid(problem)
        result = HybridExecutor(system).execute(problem, tunables)
        assert result.grid.allclose(expected)


class TestCostModelProperties:
    @given(
        dim=st.sampled_from([500, 1100, 1900]),
        tsize=st.sampled_from([10, 100, 1000, 8000]),
        dsize=st.sampled_from([1, 3, 5]),
        band=st.integers(-1, 2000),
        cpu_tile=st.sampled_from([1, 2, 4, 8, 10]),
        halo=st.integers(-1, 200),
    )
    @settings(max_examples=80, deadline=None)
    def test_predictions_positive_and_bounded_below_by_ideal(self, dim, tsize, dsize, band, cpu_tile, halo):
        params = InputParams(dim=dim, tsize=tsize, dsize=dsize)
        tunables = TunableParams.from_encoding(cpu_tile, band, halo if band >= 0 else -1, 1)
        model = CostModel(platforms.I7_2600K)
        rtime = model.predict(params, tunables)
        assert np.isfinite(rtime) and rtime > 0
        # No configuration may beat the perfectly parallel ideal by definition.
        ideal = model.serial_time(params) / (
            platforms.I7_2600K.cpu.cores + 2 * platforms.I7_2600K.gpu(0).parallel_width
        )
        assert rtime > ideal / 10

    @given(tsize=st.floats(1, 12000), dsize=st.sampled_from([1, 3, 5]))
    @settings(max_examples=40, deadline=None)
    def test_serial_time_monotone_in_tsize(self, tsize, dsize):
        model = CostModel(platforms.I3_540)
        a = model.serial_time(InputParams(dim=700, tsize=tsize, dsize=dsize))
        b = model.serial_time(InputParams(dim=700, tsize=tsize + 100, dsize=dsize))
        assert b > a


class TestTreeProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_m5p_predictions_within_target_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(80, 2))
        y = np.where(X[:, 0] > 0.5, 10.0, 0.0) + X[:, 1]
        ds = Dataset(X=X, y=y, feature_names=["a", "b"])
        tree = M5ModelTree(min_leaf=4).fit(ds)
        preds = tree.predict(X)
        margin = (y.max() - y.min()) * 0.5 + 1.0
        assert preds.min() > y.min() - margin
        assert preds.max() < y.max() + margin

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_reptree_predictions_are_observed_means(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(60, 2))
        y = rng.choice([0.0, 1.0], size=60)
        tree = REPTree(min_leaf=2, prune=False).fit(Dataset(X=X, y=y, feature_names=["a", "b"]))
        preds = tree.predict(X)
        assert np.all((preds >= 0.0) & (preds <= 1.0))
