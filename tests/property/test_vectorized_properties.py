"""Property-based tests for the diagonal index arrays and strided flat views
that back the vectorized engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import diagonal as dg
from repro.core.grid import WavefrontGrid

dims = st.integers(min_value=2, max_value=120)


class TestDiagonalIndexArrays:
    @given(dim=dims, d=st.integers(0, 400), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_matches_diagonal_cells(self, dim, d, data):
        d = min(d, 2 * dim - 2)
        i, j = dg.diagonal_index_arrays(d, dim, dim)
        cells = dg.diagonal_cells(d, dim, dim)
        assert np.array_equal(i, cells[:, 0])
        assert np.array_equal(j, cells[:, 1])

    @given(dim=dims, d=st.integers(0, 400))
    @settings(max_examples=80, deadline=None)
    def test_geometry_invariants(self, dim, d):
        d = min(d, 2 * dim - 2)
        i, j = dg.diagonal_index_arrays(d, dim, dim)
        # Every cell lies on the diagonal, inside the grid, rows ascending.
        assert np.all(i + j == d)
        assert np.all((0 <= i) & (i < dim))
        assert np.all((0 <= j) & (j < dim))
        assert np.all(np.diff(i) == 1)
        assert i.size == dg.diagonal_length(d, dim, dim)

    @given(rows=st.integers(1, 60), cols=st.integers(1, 60), d=st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_rectangular_grids(self, rows, cols, d):
        d = min(d, rows + cols - 2)
        i, j = dg.diagonal_index_arrays(d, rows, cols)
        assert np.all(i + j == d)
        assert i.size == dg.diagonal_length(d, rows, cols)


class TestFlatDiagonalSlice:
    @given(dim=dims, d=st.integers(0, 400))
    @settings(max_examples=80, deadline=None)
    def test_view_equals_fancy_indexed_diagonal(self, dim, d):
        d = min(d, 2 * dim - 2)
        values = np.arange(dim * dim, dtype=float).reshape(dim, dim)
        i, j = dg.diagonal_index_arrays(d, dim, dim)
        view = values.reshape(-1)[dg.flat_diagonal_slice(d, dim)]
        assert np.array_equal(view, values[i, j])

    @given(dim=dims, d=st.integers(0, 400))
    @settings(max_examples=50, deadline=None)
    def test_view_is_writable_alias_of_the_grid(self, dim, d):
        d = min(d, 2 * dim - 2)
        grid = WavefrontGrid(dim)
        view = grid.diagonal_view(d)
        view[:] = 7.5
        i, j = dg.diagonal_index_arrays(d, dim, dim)
        assert np.all(grid.values[i, j] == 7.5)
        # Only the diagonal's cells were touched.
        assert np.count_nonzero(grid.values) == i.size

    @given(dim=dims)
    @settings(max_examples=30, deadline=None)
    def test_all_diagonals_partition_the_grid(self, dim):
        values = np.zeros((dim, dim))
        flat = values.reshape(-1)
        total = 0
        for d in range(2 * dim - 1):
            view = flat[dg.flat_diagonal_slice(d, dim)]
            view += 1.0
            total += view.size
        assert total == dim * dim
        assert np.all(values == 1.0)
