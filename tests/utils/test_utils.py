"""Tests for the shared utilities (rng, tables, timing, serialisation, logging)."""

import dataclasses
import logging
import time

import numpy as np
import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import derive_seed, make_rng, sample_without_replacement, shuffled, spawn_rngs
from repro.utils.serialization import from_json, load_json, save_json, to_json
from repro.utils.tables import format_csv, format_grid, format_table
from repro.utils.timing import Stopwatch, repeat_timer


class TestRNG:
    def test_make_rng_deterministic_default(self):
        assert make_rng(None).integers(1000) == make_rng(None).integers(1000)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(10**6) != b.integers(10**6) or a.integers(10**6) != b.integers(10**6)
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, 500, "a") == derive_seed(1, 500, "a")
        assert derive_seed(1, 500, "a") != derive_seed(1, 501, "a")

    def test_sampling_helpers(self):
        rng = make_rng(0)
        sample = sample_without_replacement(rng, list(range(10)), 4)
        assert len(sample) == 4 and len(set(sample)) == 4
        assert sample_without_replacement(rng, [1, 2], 10) == [1, 2]
        items = list(range(8))
        assert sorted(shuffled(rng, items)) == items


class TestTables:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["x", 1.23456], ["longer", 2]], float_fmt=".2f")
        lines = text.splitlines()
        assert "1.23" in text
        assert len(lines) == 4

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_csv(self):
        assert format_csv(["a", "b"], [[1, 2]]) == "a,b\n1,2"

    def test_format_grid(self):
        text = format_grid([500, 700], [10, 100], [[1, 2], [3, 4]], corner="dim")
        assert "dim" in text and "700" in text


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.001)
        first = sw.elapsed
        with sw:
            time.sleep(0.001)
        assert sw.elapsed > first

    def test_stopwatch_misuse(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_repeat_timer(self):
        result, mean, std = repeat_timer(lambda: 42, repeats=3)
        assert result == 42 and mean >= 0 and std >= 0
        with pytest.raises(ValueError):
            repeat_timer(lambda: 1, repeats=0)


class TestSerialization:
    def test_numpy_and_dataclass_encoding(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        payload = {"a": np.int64(3), "b": np.float64(1.5), "c": np.arange(3), "d": Point(1, 2.0), "e": np.bool_(True)}
        text = to_json(payload)
        data = from_json(text)
        assert data["a"] == 3 and data["c"] == [0, 1, 2] and data["d"] == {"x": 1, "y": 2.0}
        assert data["e"] is True

    def test_save_and_load(self, tmp_path):
        path = save_json({"k": [1, 2, 3]}, tmp_path / "nested" / "f.json")
        assert load_json(path) == {"k": [1, 2, 3]}


class TestLogging:
    def test_configure_idempotent(self):
        configure_logging()
        configure_logging(verbose=True)
        logger = get_logger()
        assert len(logger.handlers) == 1
        assert get_logger("sub").name == "repro.sub"
        assert isinstance(logger, logging.Logger)
