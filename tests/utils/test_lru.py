"""Tests for the shared bounded LRU cache."""

import threading

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.utils.lru import LRUCache


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes 'a'
        cache.put("c", 3)  # evicts 'b', the least recently used
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_on_evict_fires_for_capacity_replacement_and_clear(self):
        closed = []
        cache = LRUCache(2, on_evict=lambda k, v: closed.append((k, v)))
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # replacement evicts the old value
        cache.put("c", 3)  # capacity evicts 'b'
        cache.clear()  # flushes 'a' and 'c'
        assert ("a", 1) in closed and ("b", 2) in closed
        assert ("a", 10) in closed and ("c", 3) in closed

    def test_counters_and_info(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_get_or_create_builds_once(self):
        cache = LRUCache(4)
        builds = []
        for _ in range(3):
            cache.get_or_create("k", lambda: builds.append(1) or "v")
        assert len(builds) == 1 and cache.get("k") == "v"

    def test_counters_survive_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.info()["hits"] == 1 and len(cache) == 0

    def test_pop_skips_eviction_hook(self):
        closed = []
        cache = LRUCache(2, on_evict=lambda k, v: closed.append(k))
        cache.put("a", 1)
        assert cache.pop("a") == 1 and closed == []
        with pytest.raises(KeyError):
            cache.pop("a")
        assert cache.pop("a", default=None) is None

    def test_zero_maxsize_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(0)


class TestThreadSafety:
    """The cache is shared by server worker threads; it must stay coherent."""

    def test_concurrent_put_get_keeps_bound_and_accounting(self):
        evicted = []
        cache = LRUCache(8, on_evict=lambda k, v: evicted.append(k))
        threads_n, per_thread = 8, 200

        def worker(tid):
            for i in range(per_thread):
                key = (tid * per_thread + i) % 40
                cache.put(key, (tid, i))
                cache.get(key)
                cache.get("missing")

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        info = cache.info()
        assert len(cache) <= 8
        assert info["misses"] >= threads_n * per_thread  # every 'missing' get
        # Every entry that ever left the cache fired the hook exactly once:
        # inserts == still-cached + hook firings (eviction or replacement).
        assert threads_n * per_thread == len(cache) + len(evicted)

    def test_get_or_create_builds_once_under_contention(self):
        cache = LRUCache(4)
        builds = []
        barrier = threading.Barrier(8)

        def build():
            builds.append(1)
            return "value"

        def worker():
            barrier.wait()
            assert cache.get_or_create("key", build) == "value"

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
