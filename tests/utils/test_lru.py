"""Tests for the shared bounded LRU cache."""

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.utils.lru import LRUCache


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes 'a'
        cache.put("c", 3)  # evicts 'b', the least recently used
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_on_evict_fires_for_capacity_replacement_and_clear(self):
        closed = []
        cache = LRUCache(2, on_evict=lambda k, v: closed.append((k, v)))
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # replacement evicts the old value
        cache.put("c", 3)  # capacity evicts 'b'
        cache.clear()  # flushes 'a' and 'c'
        assert ("a", 1) in closed and ("b", 2) in closed
        assert ("a", 10) in closed and ("c", 3) in closed

    def test_counters_and_info(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_get_or_create_builds_once(self):
        cache = LRUCache(4)
        builds = []
        for _ in range(3):
            cache.get_or_create("k", lambda: builds.append(1) or "v")
        assert len(builds) == 1 and cache.get("k") == "v"

    def test_counters_survive_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.info()["hits"] == 1 and len(cache) == 0

    def test_pop_skips_eviction_hook(self):
        closed = []
        cache = LRUCache(2, on_evict=lambda k, v: closed.append(k))
        cache.put("a", 1)
        assert cache.pop("a") == 1 and closed == []
        with pytest.raises(KeyError):
            cache.pop("a")
        assert cache.pop("a", default=None) is None

    def test_zero_maxsize_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(0)
