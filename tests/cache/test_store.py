"""Unit tests of the disk-backed bounded result store.

Covers the durability contract: atomic writes, corruption-tolerant
(self-repairing) reads, format versioning at both the directory and the
entry level, LRU eviction under entry/byte caps, and adoption of an
existing directory across process restarts (modelled as fresh store
instances over one tmp directory).
"""

import json

import numpy as np
import pytest

from repro.cache import (
    CACHE_FORMAT_VERSION,
    DiskCacheStore,
    decode_result,
    encode_result,
    request_key,
)
from repro.cache.store import FORMAT_MARKER
from repro.core.exceptions import CacheError, InvalidParameterError
from repro.session import Session


@pytest.fixture(scope="module")
def solved():
    """One solved lcs result reused by every store test (solves are slow)."""
    with Session(system="i7-2600K") as session:
        results = {
            dim: session.solve("lcs", dim, backend="serial") for dim in (16, 20, 24, 28)
        }
    return results


def _key(dim):
    return request_key("lcs", dim, overrides={"backend": "serial"})


class TestRoundTrip:
    def test_put_get_is_bit_exact(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path)
        key = _key(16)
        store.put(key.digest, solved[16], request=key.payload)
        loaded = store.get(key.digest)
        assert np.array_equal(loaded.grid.values, solved[16].grid.values)
        assert np.array_equal(loaded.grid.meta, solved[16].grid.meta)
        assert store.hits == 1 and store.stores == 1
        assert key.digest in store and len(store) == 1
        assert store.total_bytes > 0

    def test_missing_entry_is_a_counted_miss(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.corrupt_dropped == 0

    def test_entry_embeds_the_request_payload(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path)
        key = _key(16)
        store.put(key.digest, solved[16], request=key.payload)
        with np.load(tmp_path / f"{key.digest}.npz", allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        assert header["request"] == key.payload
        assert header["format_version"] == CACHE_FORMAT_VERSION


class TestCorruption:
    def test_truncated_entry_self_repairs(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path)
        key = _key(16)
        store.put(key.digest, solved[16], request=key.payload)
        path = tmp_path / f"{key.digest}.npz"
        path.write_bytes(path.read_bytes()[: 40])  # torn tail
        assert store.get(key.digest) is None
        assert store.corrupt_dropped == 1 and store.misses == 1
        assert not path.exists(), "corrupt entry must be deleted (repaired)"
        # The caller re-solves and re-stores; the entry is healthy again.
        store.put(key.digest, solved[16], request=key.payload)
        assert store.get(key.digest) is not None

    def test_garbage_entry_is_dropped_not_raised(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        digest = "a" * 64
        (tmp_path / f"{digest}.npz").write_bytes(b"this is not an npz archive")
        store2 = DiskCacheStore(tmp_path)  # adopts the garbage entry
        assert store2.get(digest) is None
        assert store2.corrupt_dropped == 1
        assert store.get(digest) is None  # already unlinked -> plain miss

    def test_stale_entry_version_raises_cache_error(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path)
        key = _key(16)
        arrays = encode_result(solved[16], request=key.payload)
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        header["format_version"] = CACHE_FORMAT_VERSION + 1
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        with open(tmp_path / f"{key.digest}.npz", "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CacheError):
            store.get(key.digest)


class TestFormatMarker:
    def test_marker_is_written_on_first_open(self, tmp_path):
        DiskCacheStore(tmp_path)
        recorded = json.loads((tmp_path / FORMAT_MARKER).read_text())
        assert recorded == {"format_version": CACHE_FORMAT_VERSION}

    def test_stale_directory_version_raises_at_open(self, tmp_path):
        (tmp_path / FORMAT_MARKER).write_text(
            json.dumps({"format_version": CACHE_FORMAT_VERSION + 1})
        )
        with pytest.raises(CacheError):
            DiskCacheStore(tmp_path)

    def test_unreadable_marker_raises_at_open(self, tmp_path):
        (tmp_path / FORMAT_MARKER).write_text("{not json")
        with pytest.raises(CacheError):
            DiskCacheStore(tmp_path)

    def test_bad_bounds_are_usage_errors(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            DiskCacheStore(tmp_path, max_entries=0)
        with pytest.raises(InvalidParameterError):
            DiskCacheStore(tmp_path, max_bytes=0)


class TestBoundsAndEviction:
    def test_entry_cap_evicts_lru_first(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path, max_entries=2)
        dims = [16, 20, 24]
        for dim in dims:
            store.put(_key(dim).digest, solved[dim], request=None)
        assert len(store) == 2 and store.evictions == 1
        assert store.get(_key(16).digest) is None  # oldest evicted
        assert store.get(_key(24).digest) is not None

    def test_get_refreshes_lru_order(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path, max_entries=2)
        store.put(_key(16).digest, solved[16], request=None)
        store.put(_key(20).digest, solved[20], request=None)
        store.get(_key(16).digest)  # 16 becomes most recent
        store.put(_key(24).digest, solved[24], request=None)
        assert store.get(_key(20).digest) is None
        assert store.get(_key(16).digest) is not None

    def test_byte_cap_bounds_total_size(self, tmp_path, solved):
        probe = DiskCacheStore(tmp_path / "probe")
        probe.put(_key(16).digest, solved[16], request=None)
        entry_bytes = probe.total_bytes
        store = DiskCacheStore(tmp_path / "bounded", max_bytes=int(entry_bytes * 2.5))
        for dim in (16, 20, 24, 28):
            store.put(_key(dim).digest, solved[dim], request=None)
        assert store.evictions >= 1
        assert store.total_bytes <= int(entry_bytes * 2.5)

    def test_eviction_removes_the_file(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path, max_entries=1)
        store.put(_key(16).digest, solved[16], request=None)
        store.put(_key(20).digest, solved[20], request=None)
        assert not (tmp_path / f"{_key(16).digest}.npz").exists()


class TestReopen:
    def test_existing_entries_are_adopted(self, tmp_path, solved):
        first = DiskCacheStore(tmp_path)
        for dim in (16, 20):
            key = _key(dim)
            first.put(key.digest, solved[dim], request=key.payload)
        second = DiskCacheStore(tmp_path)
        assert len(second) == 2
        loaded = second.get(_key(20).digest)
        assert np.array_equal(loaded.grid.values, solved[20].grid.values)

    def test_tmp_files_are_swept_at_open(self, tmp_path):
        DiskCacheStore(tmp_path)
        leftover = tmp_path / ("b" * 64 + ".tmp")
        leftover.write_bytes(b"half-written")
        DiskCacheStore(tmp_path)
        assert not leftover.exists()

    def test_info_is_json_safe(self, tmp_path, solved):
        store = DiskCacheStore(tmp_path)
        key = _key(16)
        store.put(key.digest, solved[16], request=key.payload)
        store.get(key.digest)
        info = store.info()
        assert json.loads(json.dumps(info)) == info
        assert info["entries"] == 1 and info["hits"] == 1 and info["stores"] == 1


class TestCodecHelpers:
    def test_decode_rejects_version_drift(self, solved):
        arrays = encode_result(solved[16], request=None)
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        with pytest.raises(CacheError):
            decode_result(arrays)

    def test_encode_simulate_result_has_no_grid(self):
        with Session(system="i7-2600K") as session:
            result = session.solve("lcs", 16, backend="serial", mode="simulate")
        arrays = encode_result(result, request=None)
        assert "values" not in arrays and "meta" not in arrays
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        assert header["grid"] is None


class TestWitnessCodec:
    @pytest.fixture(scope="class")
    def witnessed(self):
        """One witness-bearing solved result shared by the codec tests."""
        with Session(system="i7-2600K") as session:
            return session.solve("viterbi", 16, backend="serial")

    def test_codec_round_trips_the_witness_bit_exactly(self, witnessed):
        assert witnessed.witness is not None
        loaded = decode_result(encode_result(witnessed, request=None))
        assert loaded.witness.dtype == witnessed.witness.dtype
        assert np.array_equal(loaded.witness, witnessed.witness)
        assert loaded.matches(witnessed)

    def test_store_round_trips_the_witness_bit_exactly(self, tmp_path, witnessed):
        store = DiskCacheStore(tmp_path)
        key = request_key("viterbi", 16, overrides={"backend": "serial"})
        store.put(key.digest, witnessed, request=key.payload)
        loaded = store.get(key.digest)
        assert np.array_equal(loaded.witness, witnessed.witness)
        assert np.array_equal(loaded.grid.values, witnessed.grid.values)

    def test_witness_free_results_omit_the_npz_member(self, solved):
        arrays = encode_result(solved[16], request=None)
        assert "witness" not in arrays
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        assert header["witness"] is None
        assert decode_result(arrays).witness is None

    def test_legacy_entries_without_a_witness_key_decode_to_none(self, solved):
        """Pre-witness archives have no ``witness`` header key at all."""
        arrays = encode_result(solved[16], request=None)
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        del header["witness"]
        arrays["header"] = np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        assert decode_result(arrays).witness is None
