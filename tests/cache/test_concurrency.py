"""Concurrency battery of the tiered result cache.

N threads hammer one shared cached :class:`~repro.session.Session` with a
Zipf-skewed request mix over a small keyspace and the battery asserts the
properties the cache claims under load: answers bit-identical to sequential
uncached solving, exactly one real solve per unique key (stampede
protection), eviction under load never serving a stale or torn grid, and
injected corruption surfacing as counted misses followed by self-repair.

The keyspace includes witness-bearing probabilistic apps (``viterbi``,
``stochastic-path``), so every battery pass also proves witnesses survive
the memory tier, the disk tier (npz round-trip across a session restart)
and result coalescing byte-identically.
"""

import threading

import numpy as np
import pytest

from repro.cache import DiskCacheStore, ResultCache, request_key
from repro.core.exceptions import CacheError
from repro.session import Session

#: The small keyspace every battery test draws from (distinct signatures,
#: including two witness-bearing probabilistic apps).
KEYSPACE = (
    ("lcs", 20),
    ("lcs", 24),
    ("edit-distance", 20),
    ("matrix-chain", 18),
    ("viterbi", 16),
    ("stochastic-path", 16),
)


def zipf_requests(count, seed=3, s=1.2):
    """A seeded Zipf-skewed request stream over :data:`KEYSPACE`."""
    rng = np.random.RandomState(seed)
    ranks = np.arange(1, len(KEYSPACE) + 1, dtype=float)
    weights = ranks**-s
    picks = rng.choice(len(KEYSPACE), size=count, p=weights / weights.sum())
    return [KEYSPACE[i] for i in picks]


def hammer(threads, worker):
    """Run ``worker`` on ``threads`` threads; re-raise the first error."""
    errors = []

    def guarded():
        try:
            worker()
        except BaseException as error:  # noqa: BLE001 - surfaced to pytest
            errors.append(error)

    pool = [threading.Thread(target=guarded) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture(scope="module")
def expected_grids():
    """Sequential, uncached reference answers for the whole keyspace."""
    with Session(system="i7-2600K") as session:
        return {
            (app, dim): session.solve(app, dim, backend="serial").grid.values.copy()
            for app, dim in KEYSPACE
        }


@pytest.fixture(scope="module")
def expected_witnesses():
    """Sequential, uncached reference witnesses (None for witness-free apps)."""
    with Session(system="i7-2600K") as session:
        witnesses = {}
        for app, dim in KEYSPACE:
            witness = session.solve(app, dim, backend="serial").witness
            witnesses[(app, dim)] = None if witness is None else witness.copy()
        return witnesses


def assert_witness_matches(result, expected_witnesses, app, dim):
    """One served result's witness must byte-match the sequential reference."""
    expected = expected_witnesses[(app, dim)]
    if expected is None:
        assert result.witness is None, f"{app}:{dim} grew an unexpected witness"
    else:
        assert result.witness is not None, f"{app}:{dim} lost its witness"
        assert result.witness.dtype == expected.dtype
        assert np.array_equal(result.witness, expected), (
            f"{app}:{dim} witness diverged from sequential solving"
        )


class TestSharedSessionBattery:
    def test_concurrent_zipf_stream_matches_sequential(
        self, tmp_path, expected_grids, expected_witnesses
    ):
        requests = zipf_requests(64)
        stream = iter(requests)
        stream_lock = threading.Lock()
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:

            def worker():
                while True:
                    with stream_lock:
                        item = next(stream, None)
                    if item is None:
                        return
                    app, dim = item
                    result = session.solve(app, dim, backend="serial")
                    assert np.array_equal(
                        result.grid.values, expected_grids[(app, dim)]
                    ), f"{app}:{dim} diverged from sequential solving"
                    assert_witness_matches(result, expected_witnesses, app, dim)

            hammer(8, worker)
            # Exactly-once: every unique key cost one real execution, no
            # matter how the 64 requests raced across 8 threads.
            assert session.stats["runs"] == len(KEYSPACE)
            info = session.cache_info()["results"]
            assert info["lookups"] == len(requests)
            assert info["misses"] == len(KEYSPACE)
            assert (
                info["memory_hits"] + info["coalesced"]
                == len(requests) - len(KEYSPACE)
            )

    def test_warm_restart_serves_from_disk_without_solving(
        self, tmp_path, expected_grids, expected_witnesses
    ):
        with Session(system="i7-2600K", cache_dir=tmp_path) as warmup:
            for app, dim in KEYSPACE:
                warmup.solve(app, dim, backend="serial")
        requests = zipf_requests(16, seed=11)
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:

            def worker():
                for app, dim in requests:
                    result = session.solve(app, dim, backend="serial")
                    assert np.array_equal(
                        result.grid.values, expected_grids[(app, dim)]
                    )
                    # Disk-tier witnesses: byte-identical across the restart.
                    assert_witness_matches(result, expected_witnesses, app, dim)

            hammer(6, worker)
            assert session.stats["runs"] == 0, "warm restart must not re-solve"
            # One disk hit per unique key the skewed stream actually touched.
            assert session.cache_info()["results"]["disk_hits"] == len(set(requests))


class TestStampedeProtection:
    def test_cold_key_is_solved_exactly_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key("lcs", 20, overrides={"backend": "serial"})
        solves = []
        gate = threading.Barrier(8)
        with Session(system="i7-2600K") as session:

            def solve():
                solves.append(threading.get_ident())
                return session.solve("lcs", 20, backend="serial")

            def worker():
                gate.wait()  # maximise the race on the cold key
                cache.get_or_solve(key, solve)

            hammer(8, worker)
        assert len(solves) == 1, "concurrent misses must elect one leader"
        assert cache.lookups == 8 and cache.misses == 1
        assert cache.coalesced + cache.memory_hits == 7

    def test_leader_failure_propagates_then_clears(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key("lcs", 24, overrides={"backend": "serial"})
        gate = threading.Barrier(4)
        failures = []

        def failing_solve():
            raise RuntimeError("injected solve failure")

        def worker():
            gate.wait()
            try:
                cache.get_or_solve(key, failing_solve)
            except RuntimeError:
                failures.append(1)

        hammer(4, worker)
        assert len(failures) == 4, "the leader's error reaches every waiter"
        # The in-flight slot is retired: a later solve succeeds normally.
        with Session(system="i7-2600K") as session:
            result = cache.get_or_solve(
                key, lambda: session.solve("lcs", 24, backend="serial")
            )
        assert result.grid is not None


class TestEvictionUnderLoad:
    def test_tight_bounds_never_serve_stale_or_torn_grids(
        self, tmp_path, expected_grids
    ):
        cache = ResultCache(tmp_path, max_entries=2, memory_entries=1)
        with Session(system="i7-2600K", cache_dir=None, result_cache=cache) as session:

            def worker():
                for app, dim in zipf_requests(24, seed=17, s=0.5):
                    result = session.solve(app, dim, backend="serial")
                    assert np.array_equal(
                        result.grid.values, expected_grids[(app, dim)]
                    ), f"{app}:{dim} served a wrong grid under eviction pressure"

            hammer(6, worker)
        assert cache.store.evictions > 0, "the test must actually evict"
        assert len(cache.store) <= 2
        assert cache.store.corrupt_dropped == 0


class TestCorruptionUnderLoad:
    def test_injected_corruption_is_counted_and_repaired(
        self, tmp_path, expected_grids
    ):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            session.solve("lcs", 20, backend="serial")
            digest = next(iter(p.stem for p in tmp_path.glob("*.npz")))
            path = tmp_path / f"{digest}.npz"
            path.write_bytes(b"garbage" * 100)
            session.result_cache.clear_memory()
            runs_before = session.stats["runs"]

            def worker():
                result = session.solve("lcs", 20, backend="serial")
                assert np.array_equal(
                    result.grid.values, expected_grids[("lcs", 20)]
                )

            hammer(6, worker)
            store = session.result_cache.store
            assert store.corrupt_dropped == 1, "corruption must be counted once"
            assert session.stats["runs"] == runs_before + 1, "one repair re-solve"
            # Self-repair: the entry is valid again for a cold reader.
            fresh = DiskCacheStore(tmp_path)
            assert fresh.get(digest) is not None

    def test_stale_directory_fails_fast_at_session_construction(self, tmp_path):
        (tmp_path / "cache_format.json").write_text('{"format_version": 999}')
        with pytest.raises(CacheError):
            Session(system="i7-2600K", cache_dir=tmp_path)


class TestWitnessEndToEnd:
    """Cold solve -> memory hit -> disk hit return byte-identical witnesses."""

    @pytest.mark.parametrize("app,dim", [("viterbi", 16), ("stochastic-path", 16)])
    def test_witness_identical_across_all_cache_tiers(self, tmp_path, app, dim):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            cold = session.solve(app, dim, backend="serial")
            assert cold.witness is not None and cold.witness.dtype == np.int64
            warm = session.solve(app, dim, backend="serial")
            assert session.cache_info()["results"]["memory_hits"] >= 1
            assert np.array_equal(warm.witness, cold.witness)
        # A fresh session over the same directory hits the disk tier only.
        with Session(system="i7-2600K", cache_dir=tmp_path) as restarted:
            disk = restarted.solve(app, dim, backend="serial")
            assert restarted.stats["runs"] == 0
            assert disk.witness.dtype == cold.witness.dtype
            assert np.array_equal(disk.witness, cold.witness)

    def test_witness_free_apps_stay_witness_free_through_the_tiers(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            assert session.solve("lcs", 20, backend="serial").witness is None
        with Session(system="i7-2600K", cache_dir=tmp_path) as restarted:
            assert restarted.solve("lcs", 20, backend="serial").witness is None
