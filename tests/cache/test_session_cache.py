"""Session- and server-level behaviour of the persistent result cache.

What is cached (functional registry-name requests), what deliberately
bypasses the cache (simulate mode, instance/problem requests), how the
cache surfaces in ``cache_info()`` and the server's metrics snapshot, and
that cached answers stay bit-identical to fresh solving.
"""

import numpy as np
import pytest

from repro.apps.lcs import LCSApp
from repro.server import ReproServer, ServerConfig
from repro.session import Session


class TestSolveCaching:
    def test_repeated_solve_executes_once(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            first = session.solve("lcs", 24, backend="serial")
            runs = session.stats["runs"]
            second = session.solve("lcs", 24, backend="serial")
            assert session.stats["runs"] == runs
            assert np.array_equal(first.grid.values, second.grid.values)

    def test_results_persist_across_sessions(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as first:
            original = session_solve = first.solve("lcs", 24, backend="serial")
        with Session(system="i7-2600K", cache_dir=tmp_path) as second:
            replayed = second.solve("lcs", 24, backend="serial")
            assert second.stats["runs"] == 0
            assert second.cache_info()["results"]["disk_hits"] == 1
        assert np.array_equal(original.grid.values, replayed.grid.values)
        assert replayed.rtime == pytest.approx(session_solve.rtime)

    def test_solve_many_shares_the_cache(self, tmp_path):
        requests = [("lcs", 24), ("lcs", 24), ("matrix-chain", 18), ("lcs", 24)]
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            # Warm the plan path manually so every request is a manual plan.
            results = session.solve_many(
                [{"app": app, "dim": dim, "backend": "serial"} for app, dim in requests]
            )
            assert session.stats["runs"] == 2  # two distinct signatures
            assert np.array_equal(results[0].grid.values, results[1].grid.values)

    def test_simulate_mode_bypasses_the_cache(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            runs = session.stats["runs"]
            session.solve("lcs", 24, backend="serial", mode="simulate")
            session.solve("lcs", 24, backend="serial", mode="simulate")
            assert session.stats["runs"] == runs + 2
            assert session.cache_info()["results"]["lookups"] == 0

    def test_instance_requests_bypass_the_cache(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            app = LCSApp(dim=24, seed=5)
            runs = session.stats["runs"]
            session.solve(app, 24, backend="serial")
            session.solve(app, 24, backend="serial")
            assert session.stats["runs"] == runs + 2
            assert session.cache_info()["results"]["lookups"] == 0

    def test_distinct_overrides_get_distinct_entries(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            serial = session.solve("lcs", 24, backend="serial")
            vectorized = session.solve("lcs", 24, backend="vectorized")
            assert session.stats["runs"] == 2
            assert session.cache_info()["results"]["misses"] == 2
            # Same mathematics, separately addressed.
            assert np.array_equal(serial.grid.values, vectorized.grid.values)

    def test_cached_answers_match_uncached_sessions(self, tmp_path):
        with Session(system="i7-2600K") as plain:
            expected = plain.solve("lcs", 24, backend="serial")
        with Session(system="i7-2600K", cache_dir=tmp_path) as cached:
            cached.solve("lcs", 24, backend="serial")
            warm = cached.solve("lcs", 24, backend="serial")
        assert np.array_equal(warm.grid.values, expected.grid.values)


class TestIntrospection:
    def test_cache_info_has_no_results_section_without_cache(self):
        with Session(system="i7-2600K") as session:
            assert "results" not in session.cache_info()
            assert session.result_cache is None

    def test_cache_info_reports_every_tier(self, tmp_path):
        with Session(system="i7-2600K", cache_dir=tmp_path) as session:
            session.solve("lcs", 24, backend="serial")
            session.solve("lcs", 24, backend="serial")
            info = session.cache_info()["results"]
        assert info["lookups"] == 2 and info["misses"] == 1
        assert info["memory_hits"] == 1
        assert info["hit_rate"] == pytest.approx(0.5)
        assert info["disk"]["entries"] == 1
        assert info["memory"]["size"] == 1

    def test_server_metrics_carry_the_cache_section(self, tmp_path):
        session = Session(system="i7-2600K", cache_dir=tmp_path, space=None)
        with ReproServer(session, ServerConfig(), own_session=True) as server:
            server.solve("lcs", 24, backend="serial", timeout=30)
            server.solve("lcs", 24, backend="serial", timeout=30)
            snapshot = server.metrics()
        assert snapshot["cache"] is not None
        assert snapshot["cache"]["lookups"] >= 2
        assert snapshot["cache"]["misses"] >= 1
        assert "caches" in snapshot and "results" in snapshot["caches"]

    def test_server_metrics_cache_is_none_without_cache_dir(self):
        session = Session(system="i7-2600K")
        with ReproServer(session, ServerConfig(), own_session=True) as server:
            assert server.metrics()["cache"] is None
