"""Shared fixtures of the serving-layer tests.

One module-scoped session (tiny-space learned tuner on the single-GPU
system) backs every server, so the suite trains once and exercises the
thread-safety of *sharing* — which is exactly the serving contract.
"""

from __future__ import annotations

import pytest

from repro.session import Session


@pytest.fixture(scope="module")
def serve_session(quick_tuner_i3, i3):
    """A session over the shared tiny-space tuner, shared across tests."""
    with Session(system=i3, tuner=quick_tuner_i3) as session:
        yield session
