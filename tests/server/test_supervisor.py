"""Tests for shard supervision and chaos injection.

The unit layer drives :class:`ShardSupervisor` against a stub session so
crash/restart/re-dispatch logic is exercised in milliseconds; the
integration layer at the bottom runs a real :class:`ReproServer` over the
shared serving session with a fault plan armed.
"""

import threading
import time

import pytest

from repro.core.exceptions import (
    DeadlineError,
    ServerError,
    ShardCrashError,
    ShardUnavailableError,
    UsageError,
    WorkerCrashError,
)
from repro.server import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ReproServer,
    ServerConfig,
    ShardSupervisor,
    SupervisorConfig,
)

#: Millisecond-scale supervision so every failure path runs fast.
FAST = SupervisorConfig(
    heartbeat_interval_s=0.02,
    missed_heartbeats=3,
    hang_grace_s=0.05,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    backoff_jitter=0.1,
    restart_budget=4,
    restart_window_s=5.0,
    max_redispatch=2,
)

REQUEST = {"app": "lcs", "dim": 8}


def soon(seconds=5.0):
    """A deadline ``seconds`` from now on the supervisor's clock."""
    return time.perf_counter() + seconds


def wait_until(predicate, timeout_s=3.0):
    """Poll ``predicate`` until true; fail the test on timeout."""
    end = time.monotonic() + timeout_s
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


class StubSession:
    """A deterministic stand-in session that can crash on demand."""

    def __init__(self, crashes=0):
        self.crashes_left = crashes
        self.calls = 0
        self.closed = False
        self._lock = threading.Lock()

    def solve_many(self, requests, mode=None, deadline_at=None):
        with self._lock:
            self.calls += 1
            if self.crashes_left > 0:
                self.crashes_left -= 1
                raise WorkerCrashError("stub worker pool died")
        request = requests[0]
        return [f"answer:{request['app']}:{request['dim']}"]

    def close(self):
        self.closed = True


@pytest.fixture()
def supervised():
    """One started single-shard supervisor over a fresh stub session."""

    def build(crashes=0, config=FAST, plan=None, shards=1):
        stub = StubSession(crashes=crashes)
        if shards == 1:
            supervisor = ShardSupervisor(
                stub, config=config, fault_plan=plan
            )
        else:
            supervisor = ShardSupervisor(
                shards=shards,
                session_factory=lambda index: StubSession(),
                config=config,
                fault_plan=plan,
            )
        supervisor.start()
        built.append(supervisor)
        return supervisor, stub

    built = []
    yield build
    for supervisor in built:
        supervisor.close()


class TestFaultPlan:
    def test_parse_round_trips_and_sorts_by_ordinal(self):
        plan = FaultPlan.parse("drop@47,kill@7,slow@18:0.2,hang@40:3")
        assert len(plan) == 4
        assert plan.describe() == "kill@7,slow@18:0.2,hang@40:3,drop@47"
        assert FaultPlan.parse(plan.describe()) == plan

    def test_empty_specs_yield_the_empty_plan(self):
        assert len(FaultPlan.parse(None)) == 0
        assert len(FaultPlan.parse("")) == 0
        assert len(FaultPlan.parse("  ")) == 0
        assert FaultPlan.parse(None).describe() == ""

    def test_sleep_defaults_differ_for_slow_and_hang(self):
        assert FaultSpec("slow", 1).sleep_s == pytest.approx(0.25)
        assert FaultSpec("hang", 1).sleep_s == pytest.approx(60.0)
        assert FaultSpec("slow", 1, seconds=0.02).sleep_s == pytest.approx(0.02)

    @pytest.mark.parametrize(
        "spec",
        ["boom@3", "kill", "kill@x", "kill@0", "slow@3:abc", "@3", "kill@"],
    )
    def test_malformed_specs_raise_usage_error(self, spec):
        with pytest.raises(UsageError):
            FaultPlan.parse(spec)

    def test_negative_seconds_rejected(self):
        with pytest.raises(UsageError):
            FaultSpec("slow", 1, seconds=-0.1)


class TestFaultInjector:
    def test_fault_fires_in_the_batch_containing_its_ordinal(self):
        injector = FaultInjector(plan=FaultPlan.parse("kill@3"))
        assert injector.take(2) == []
        due = injector.take(2)  # window (2, 4] contains ordinal 3
        assert [spec.kind for spec in due] == ["kill"]

    def test_each_fault_fires_exactly_once(self):
        injector = FaultInjector(plan=FaultPlan.parse("kill@1"))
        assert len(injector.take(1)) == 1
        assert injector.take(1) == []
        assert injector.info()["injected"] == 1

    def test_empty_plan_is_free(self):
        injector = FaultInjector()
        assert injector.take(100) == []
        assert injector.info()["scheduled"] == 0

    def test_info_reports_by_kind_and_plan(self):
        injector = FaultInjector(plan=FaultPlan.parse("kill@1,drop@2,kill@3"))
        injector.take(2)
        info = injector.info()
        assert info["scheduled"] == 3
        assert info["injected"] == 2
        assert info["by_kind"] == {"kill": 1, "drop": 1}
        assert info["requests_seen"] == 2
        assert info["plan"] == "kill@1,drop@2,kill@3"


class TestSupervisorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval_s": 0.0},
            {"missed_heartbeats": 0},
            {"hang_grace_s": -1.0},
            {"backoff_base_s": -0.1},
            {"backoff_jitter": -0.1},
            {"restart_budget": -1},
            {"restart_window_s": 0.0},
            {"max_redispatch": -1},
        ],
    )
    def test_bad_knobs_raise_server_error(self, kwargs):
        with pytest.raises(ServerError):
            SupervisorConfig(**kwargs)

    def test_supervisor_needs_a_session_or_factory(self):
        with pytest.raises(ServerError):
            ShardSupervisor()
        with pytest.raises(ServerError):
            ShardSupervisor(StubSession(), shards=0)


class TestSupervision:
    def test_execute_round_trips_through_the_shard(self, supervised):
        supervisor, stub = supervised()
        assert supervisor.ready and not supervisor.circuit_open
        answer = supervisor.execute(REQUEST, deadline_at=soon())
        assert answer == "answer:lcs:8"
        assert stub.calls == 1

    def test_worker_crash_restarts_and_redispatches(self, supervised):
        supervisor, stub = supervised(crashes=1)
        answer = supervisor.execute(REQUEST, deadline_at=soon())
        assert answer == "answer:lcs:8"  # second attempt succeeded
        assert stub.calls == 2
        info = supervisor.info()
        assert info["crashes"] == 1
        assert info["redispatches"] == 1
        wait_until(lambda: supervisor.info()["restarts"] >= 1)
        wait_until(lambda: supervisor.ready)

    def test_chaos_kill_is_survived_and_counted_once(self, supervised):
        supervisor, stub = supervised(plan=FaultPlan.parse("kill@1"))
        answer = supervisor.execute(REQUEST, deadline_at=soon())
        assert answer == "answer:lcs:8"
        assert stub.calls == 1  # the kill fired before any solve
        info = supervisor.info()
        assert info["faults_injected"] == 1
        assert info["faults"]["by_kind"] == {"kill": 1}

    def test_chaos_drop_fails_typed_at_the_deadline(self, supervised):
        supervisor, stub = supervised(plan=FaultPlan.parse("drop@1"))
        with pytest.raises(DeadlineError, match="dropped"):
            supervisor.execute(REQUEST, deadline_at=soon(0.3))
        assert stub.calls == 1  # the work happened, the response vanished
        assert supervisor.info()["shards"][0]["dropped_responses"] == 1

    def test_chaos_hang_is_detected_and_the_shard_restarted(self, supervised):
        supervisor, stub = supervised(plan=FaultPlan.parse("hang@1:1.0"))
        with pytest.raises(DeadlineError):
            supervisor.execute(REQUEST, deadline_at=soon(0.2))
        wait_until(lambda: supervisor.info()["restarts"] >= 1)
        wait_until(lambda: supervisor.ready)
        # The recovered shard serves the next request normally.
        assert supervisor.execute(REQUEST, deadline_at=soon()) == "answer:lcs:8"

    def test_request_expired_in_the_inbox_fails_typed(self, supervised):
        supervisor, _ = supervised()
        with pytest.raises(DeadlineError):
            supervisor.execute(REQUEST, deadline_at=time.perf_counter())

    def test_restart_budget_trips_the_circuit_breaker(self, supervised):
        config = SupervisorConfig(
            heartbeat_interval_s=0.02,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            restart_budget=0,
            max_redispatch=0,
        )
        supervisor, _ = supervised(crashes=10, config=config)
        with pytest.raises(ShardCrashError):
            supervisor.execute(REQUEST, deadline_at=soon())
        assert supervisor.circuit_open and not supervisor.ready
        with pytest.raises(ShardUnavailableError):
            supervisor.execute(REQUEST, deadline_at=soon())

    def test_redispatch_budget_bounds_the_attempts(self, supervised):
        config = SupervisorConfig(
            heartbeat_interval_s=0.02,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            restart_budget=10,
            max_redispatch=1,
        )
        supervisor, stub = supervised(crashes=5, config=config)
        with pytest.raises(ShardCrashError, match="2 times"):
            supervisor.execute(REQUEST, deadline_at=soon())
        assert stub.calls == 2  # initial attempt + exactly one re-dispatch
        assert supervisor.info()["redispatches"] == 1

    def test_missed_heartbeats_restart_an_idle_shard(self, supervised):
        supervisor, _ = supervised()
        shard = supervisor.shards[0]
        with shard._cond:
            shard.epoch += 1  # silently retire the thread: beats stop
        wait_until(lambda: shard.crashes >= 1)
        wait_until(lambda: supervisor.ready)
        assert supervisor.execute(REQUEST, deadline_at=soon()) == "answer:lcs:8"

    def test_factory_shards_route_and_close_their_sessions(self):
        sessions = {}

        def factory(index):
            sessions[index] = StubSession()
            return sessions[index]

        supervisor = ShardSupervisor(
            shards=3, session_factory=factory, config=FAST
        )
        supervisor.start()
        try:
            for signature in ("a", "b", "c", "d"):
                answer = supervisor.execute(
                    REQUEST, deadline_at=soon(), signature=signature
                )
                assert answer == "answer:lcs:8"
            assert len(supervisor.info()["shards"]) == 3
        finally:
            supervisor.close()
        assert all(stub.closed for stub in sessions.values())

    def test_borrowed_session_is_not_closed(self, supervised):
        supervisor, stub = supervised()
        supervisor.close()
        assert not stub.closed

    def test_closed_supervisor_sheds_new_work(self, supervised):
        supervisor, _ = supervised()
        supervisor.close()
        with pytest.raises(ShardUnavailableError):
            supervisor.execute(REQUEST, deadline_at=soon())


class TestServerIntegration:
    """A real ReproServer over the shared session, supervision armed."""

    def test_chaos_kill_served_bit_exact_with_metrics(self, serve_session):
        config = ServerConfig(queue_capacity=16, default_deadline_s=30.0)
        with ReproServer(
            serve_session,
            config,
            supervisor_config=FAST,
            fault_plan=FaultPlan.parse("kill@1"),
        ) as server:
            result = server.solve("lcs", 48)
            reference = serve_session.solve("lcs", 48)
            assert result.value == reference.value
            assert result.checksum == reference.checksum
            metrics = server.metrics()
        supervisor = metrics["supervisor"]
        assert supervisor["faults_injected"] == 1
        assert supervisor["redispatches"] == 1
        assert metrics["requests"]["completed"] == 1
        assert metrics["requests"]["deadline_expired"] == 0
        for key in ("restarts", "crashes", "shards", "faults"):
            assert key in supervisor

    def test_degraded_fallback_keeps_serving_past_the_breaker(
        self, serve_session
    ):
        config = ServerConfig(
            queue_capacity=16, default_deadline_s=30.0, degraded_fallback=True
        )
        breaker = SupervisorConfig(
            heartbeat_interval_s=0.02,
            backoff_base_s=0.01,
            restart_budget=0,
            max_redispatch=0,
        )
        with ReproServer(
            serve_session,
            config,
            supervisor_config=breaker,
            fault_plan=FaultPlan.parse("kill@1"),
        ) as server:
            # The kill trips the single shard's restart budget immediately.
            with pytest.raises(ServerError):
                server.solve("lcs", 48)
            assert server.supervisor.circuit_open
            readiness = server.readiness()
            assert readiness["degraded"] is True
            assert readiness["ready"] is True  # degraded, not down
            # Further requests are served on the server's own session.
            result = server.solve("lcs", 48)
            assert result.checksum == serve_session.solve("lcs", 48).checksum

    def test_open_circuit_without_fallback_sheds_at_admission(
        self, serve_session
    ):
        breaker = SupervisorConfig(
            heartbeat_interval_s=0.02,
            backoff_base_s=0.01,
            restart_budget=0,
            max_redispatch=0,
        )
        with ReproServer(
            serve_session,
            ServerConfig(queue_capacity=16),
            supervisor_config=breaker,
            fault_plan=FaultPlan.parse("kill@1"),
        ) as server:
            with pytest.raises(ServerError):
                server.solve("lcs", 48)
            assert server.readiness()["ready"] is False
            before = server.metrics()["requests"]["rejected"]
            with pytest.raises(ShardUnavailableError):
                server.submit("lcs", 48)
            assert server.metrics()["requests"]["rejected"] == before + 1

    def test_deadline_expiry_is_counted_in_metrics(self, serve_session):
        with ReproServer(
            serve_session,
            ServerConfig(queue_capacity=16),
            supervisor_config=FAST,
            fault_plan=FaultPlan.parse("drop@1"),
        ) as server:
            with pytest.raises(DeadlineError):
                server.solve("lcs", 48, deadline_s=0.5)
            metrics = server.metrics()
        assert metrics["requests"]["deadline_expired"] == 1
        assert metrics["requests"]["failed"] == 1  # the invariant's view
        assert metrics["requests"]["in_flight"] == 0
