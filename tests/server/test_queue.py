"""Tests for the bounded request queue: admission control and coalescing."""

import threading
import time

import pytest

from repro.core.exceptions import BackpressureError, ReproError, ServerError
from repro.server.queue import RequestQueue, ServeRequest, request_signature


def make_request(app="lcs", dim=48, mode=None, **plan_kwargs):
    """One ticket with the given signature ingredients."""
    return ServeRequest(
        app=app,
        dim=dim,
        mode=mode,
        plan_kwargs=plan_kwargs,
        enqueued_at=time.perf_counter(),
    )


class TestSignature:
    def test_equal_requests_share_a_signature(self):
        assert make_request().signature == make_request().signature
        assert request_signature("lcs", 48, None, {}) == make_request().signature

    def test_any_ingredient_changes_the_signature(self):
        base = make_request().signature
        assert make_request(dim=64).signature != base
        assert make_request(app="knapsack").signature != base
        assert make_request(mode="simulate").signature != base
        assert make_request(backend="serial").signature != base

    def test_unhashable_override_values_are_admitted(self):
        # repr-keying keeps admission working for list/dict override values.
        request = make_request(weights=[1, 2, 3])
        assert request.signature == make_request(weights=[1, 2, 3]).signature


class TestAdmissionControl:
    def test_overflow_raises_typed_backpressure(self):
        queue = RequestQueue(2)
        queue.submit(make_request())
        queue.submit(make_request())
        with pytest.raises(BackpressureError) as excinfo:
            queue.submit(make_request())
        assert isinstance(excinfo.value, ReproError)  # part of the taxonomy
        assert "full" in str(excinfo.value)
        assert queue.depth == 2 and queue.high_water == 2

    def test_closed_queue_rejects_with_server_error(self):
        queue = RequestQueue(4)
        queue.close()
        with pytest.raises(ServerError):
            queue.submit(make_request())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServerError):
            RequestQueue(0)


class TestCoalescingDrain:
    def test_same_signature_coalesces_across_interleavings(self):
        queue = RequestQueue(16)
        for app in ("lcs", "knapsack", "lcs", "knapsack", "lcs"):
            queue.submit(make_request(app=app))
        first = queue.next_batch(max_batch=8)
        assert [r.app for r in first] == ["lcs", "lcs", "lcs"]
        second = queue.next_batch(max_batch=8)
        assert [r.app for r in second] == ["knapsack", "knapsack"]
        assert queue.depth == 0

    def test_max_batch_bounds_the_drain(self):
        queue = RequestQueue(16)
        for _ in range(5):
            queue.submit(make_request())
        assert len(queue.next_batch(max_batch=2)) == 2
        assert len(queue.next_batch(max_batch=2)) == 2
        assert len(queue.next_batch(max_batch=2)) == 1

    def test_other_signatures_keep_fifo_order(self):
        queue = RequestQueue(16)
        for app, dim in (("lcs", 48), ("knapsack", 32), ("lcs", 48), ("nash-equilibrium", 24)):
            queue.submit(make_request(app=app, dim=dim))
        queue.next_batch(max_batch=8)  # drains both lcs:48
        remaining = [queue.next_batch(max_batch=8)[0].app, queue.next_batch(max_batch=8)[0].app]
        assert remaining == ["knapsack", "nash-equilibrium"]

    def test_timeout_returns_empty(self):
        queue = RequestQueue(4)
        t0 = time.perf_counter()
        assert queue.next_batch(max_batch=4, timeout=0.05) == []
        assert time.perf_counter() - t0 < 2.0

    def test_close_wakes_a_blocked_drainer(self):
        queue = RequestQueue(4)
        results = []

        def drain():
            results.append(queue.next_batch(max_batch=4, timeout=30))

        thread = threading.Thread(target=drain)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive() and results == [[]]

    def test_drain_rejected_fails_queued_requests(self):
        queue = RequestQueue(4)
        tickets = [queue.submit(make_request()) for _ in range(3)]
        failed = queue.drain_rejected(ServerError("shutting down"))
        assert failed == tickets
        for ticket in tickets:
            with pytest.raises(ServerError):
                ticket.result(timeout=0)


class TestTicket:
    def test_result_timeout_raises_server_error(self):
        request = make_request()
        with pytest.raises(ServerError):
            request.result(timeout=0.01)

    def test_complete_and_fail_wake_the_waiter(self):
        done = make_request()
        done.complete("answer")
        assert done.done and done.result(timeout=0) == "answer"
        failed = make_request()
        failed.fail(ServerError("boom"))
        with pytest.raises(ServerError, match="boom"):
            failed.result(timeout=0)
