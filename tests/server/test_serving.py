"""Tests for the in-process serving core: concurrency, batching, lifecycle.

The acceptance contract of the serving layer:

* N threads hammering one server (hence one shared ``Session``) get grids
  bit-identical to sequential solving;
* the coalescing scheduler batches same-signature requests into single
  ``solve_many`` calls (observable in the batch-size histogram and in the
  tuner-resolution counter);
* overflow is a typed :class:`~repro.core.exceptions.BackpressureError`;
* shutdown drains gracefully and releases the engine host's worker pools;
* the metrics snapshot is well-formed JSON.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.exceptions import (
    BackpressureError,
    ReproError,
    ServerError,
    UnknownApplicationError,
)
from repro.server import ReproServer, ServerConfig
from repro.session import Session

MIX = (("lcs", 48), ("edit-distance", 40), ("matrix-chain", 32))


@pytest.fixture()
def server(serve_session):
    """A running server over the shared session (borrowed, not owned)."""
    with ReproServer(serve_session, ServerConfig(queue_capacity=64)) as srv:
        yield srv


class TestConcurrentEquivalence:
    def test_hammered_results_are_bit_identical_to_sequential(
        self, server, serve_session
    ):
        sequential = {
            (app, dim): serve_session.solve(app, dim) for app, dim in MIX
        }
        failures = []

        def hammer(thread_id):
            for i in range(6):
                app, dim = MIX[(thread_id + i) % len(MIX)]
                result = server.solve(app, dim, timeout=60)
                if not np.array_equal(
                    result.grid.values, sequential[(app, dim)].grid.values
                ):
                    failures.append((thread_id, app, dim))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_submit_returns_tickets_resolving_independently(self, server):
        tickets = [server.submit(app, dim) for app, dim in MIX]
        values = [t.result(timeout=60).value for t in tickets]
        assert len(values) == len(MIX)


class TestBatching:
    def test_queued_same_signature_requests_coalesce(self, serve_session):
        # Submitting before start() makes the batch deterministic: all six
        # identical requests are queued when the scheduler first drains.
        config = ServerConfig(queue_capacity=16, max_batch=8)
        server = ReproServer(serve_session, config)
        resolved_before = serve_session.stats["plans_resolved"]
        runs_before = serve_session.stats["runs"]
        tickets = [server.submit("lcs", 48) for _ in range(6)]
        server.start()
        results = [t.result(timeout=60) for t in tickets]
        server.close()
        assert all(r.checksum == results[0].checksum for r in results)
        histogram = server.metrics()["batches"]["histogram"]
        assert histogram.get("6") == 1  # one coalesced batch served them all
        # The whole batch cost at most one fresh tuner resolution and
        # exactly ONE grid execution — followers share the result.
        assert serve_session.stats["plans_resolved"] - resolved_before <= 1
        assert serve_session.stats["runs"] - runs_before == 1

    def test_max_batch_splits_oversized_groups(self, serve_session):
        server = ReproServer(
            serve_session, ServerConfig(queue_capacity=16, max_batch=2)
        )
        tickets = [server.submit("lcs", 48) for _ in range(5)]
        server.start()
        for ticket in tickets:
            ticket.result(timeout=60)
        server.close()
        histogram = server.metrics()["batches"]["histogram"]
        assert max(int(size) for size in histogram) <= 2


class TestBackpressure:
    def test_overflow_is_typed_and_counted(self, serve_session):
        server = ReproServer(serve_session, ServerConfig(queue_capacity=3))
        for _ in range(3):
            server.submit("lcs", 48)
        with pytest.raises(BackpressureError) as excinfo:
            server.submit("lcs", 48)
        assert isinstance(excinfo.value, ReproError)
        assert server.metrics()["requests"]["rejected"] == 1
        server.start()
        server.close()

    def test_submit_after_close_raises_server_error(self, serve_session):
        server = ReproServer(serve_session, ServerConfig(queue_capacity=4))
        server.start()
        server.close()
        with pytest.raises(ServerError):
            server.submit("lcs", 48)


class TestFailuresStayIsolated:
    def test_unknown_app_fails_its_ticket_not_the_server(self, server):
        bad = server.submit("no-such-app", 16)
        with pytest.raises(UnknownApplicationError):
            bad.result(timeout=60)
        # The worker survived and keeps serving.
        assert server.solve("lcs", 48, timeout=60).grid is not None
        assert server.metrics()["requests"]["failed"] >= 1


class TestLifecycle:
    def test_close_releases_owned_session_pools(self, quick_tuner_i3, i3):
        session = Session(system=i3, tuner=quick_tuner_i3)
        server = ReproServer(session, own_session=True)
        server.start()
        assert server.solve("lcs", 48, timeout=60).grid is not None
        server.close()
        # Owned session (and its EngineHost pools/executors) are released.
        info = session.cache_info()
        assert info["pools"]["size"] == 0 and info["executors"]["size"] == 0
        with pytest.raises(ReproError):
            session.solve("lcs", 48)

    def test_borrowed_session_survives_server_close(self, serve_session):
        server = ReproServer(serve_session)
        server.start()
        server.solve("lcs", 48, timeout=60)
        server.close()
        assert serve_session.solve("lcs", 48).grid is not None

    def test_close_is_idempotent_and_start_after_close_fails(self, serve_session):
        server = ReproServer(serve_session)
        server.start()
        server.close()
        server.close()
        with pytest.raises(ServerError):
            server.start()

    def test_stranded_requests_are_failed_and_accounted(self, serve_session):
        """A never-started server closing with a backlog fails the queued
        tickets immediately (no pointless drain wait — there are no workers)
        AND keeps the metrics invariant accepted == completed + failed +
        in_flight."""
        import time

        server = ReproServer(serve_session)  # default 30s drain timeout
        tickets = [server.submit("lcs", 48) for _ in range(2)]
        t0 = time.perf_counter()
        server.close()
        assert time.perf_counter() - t0 < 5  # skipped the workerless drain
        for ticket in tickets:
            with pytest.raises(ServerError):
                ticket.result(timeout=0)
        requests = server.metrics()["requests"]
        assert requests["failed"] == 2 and requests["in_flight"] == 0
        assert requests["accepted"] == (
            requests["completed"] + requests["failed"] + requests["cancelled"]
        )

    def test_shutdown_refusal_is_not_counted_as_backpressure(self, serve_session):
        server = ReproServer(serve_session)
        server.start()
        server.close()
        with pytest.raises(ServerError):
            server.submit("lcs", 48)
        requests = server.metrics()["requests"]
        # Not admitted, not load shedding: no counter keeps it.
        assert requests["rejected"] == 0 and requests["accepted"] == 0


class TestCancellation:
    def test_cancelled_request_is_skipped_not_executed(self, serve_session):
        """A ticket whose waiter gave up before scheduling is dropped by the
        scheduler (no ghost work) and counted as cancelled, not completed."""
        server = ReproServer(serve_session, ServerConfig(queue_capacity=8))
        abandoned = server.submit("lcs", 48)   # queued: no workers yet
        with pytest.raises(ServerError):       # waiter times out and leaves
            abandoned.result(timeout=0.01)
        assert abandoned.cancel()
        server.start()
        live = server.solve("edit-distance", 40, timeout=60)  # server healthy
        assert live.grid is not None
        server.close()
        requests = server.metrics()["requests"]
        assert requests["cancelled"] == 1 and requests["completed"] == 1
        assert requests["accepted"] == (
            requests["completed"] + requests["failed"] + requests["cancelled"]
        )

    def test_cancel_after_completion_is_a_no_op(self, server):
        ticket = server.submit("lcs", 48)
        ticket.result(timeout=60)
        assert not ticket.cancel()
        assert server.metrics()["requests"]["cancelled"] == 0


class TestMetrics:
    def test_snapshot_is_json_safe_and_complete(self, server):
        server.solve("lcs", 48, timeout=60)
        snapshot = json.loads(json.dumps(server.metrics()))
        for key in (
            "uptime_s",
            "requests",
            "queue",
            "batches",
            "latency_ms",
            "throughput_rps",
            "caches",
        ):
            assert key in snapshot, key
        assert snapshot["requests"]["completed"] >= 1
        assert snapshot["queue"]["capacity"] == 64
        latency = snapshot["latency_ms"]
        assert latency["samples"] >= 1 and latency["p50"] <= latency["max"]
        assert "plans" in snapshot["caches"]
