"""Tests for the HTTP/JSON endpoint (routes, error mapping, shutdown)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server import ReproServer, ServerConfig, ServingEndpoint, witness_digest


@pytest.fixture()
def endpoint(serve_session):
    """A live endpoint on an ephemeral port, torn down after the test."""
    server = ReproServer(serve_session, ServerConfig(queue_capacity=32))
    ep = ServingEndpoint(server, port=0)
    thread = threading.Thread(target=ep.serve_forever, daemon=True)
    thread.start()
    yield ep
    ep.begin_shutdown()
    thread.join(timeout=10)
    server.close()


def get_json(url, timeout=10):
    """GET one JSON payload."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def post_json(url, payload, timeout=60):
    """POST one JSON payload; return (status, body)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestRoutes:
    def test_solve_answers_the_result_payload(self, endpoint, serve_session):
        status, body = post_json(endpoint.url + "/solve", {"app": "lcs", "dim": 48})
        assert status == 200
        reference = serve_session.solve("lcs", 48)
        assert body["value"] == reference.value
        assert body["checksum"] == reference.checksum
        assert len(body["grid_sha256"]) == 64
        assert body["app"] == "lcs" and body["dim"] == 48

    def test_solve_accepts_plan_overrides(self, endpoint, serve_session):
        status, body = post_json(
            endpoint.url + "/solve",
            {"app": "lcs", "dim": 48, "backend": "serial"},
        )
        assert status == 200
        assert body["checksum"] == serve_session.solve("lcs", 48).checksum

    def test_witness_bearing_app_answers_the_exact_path(
        self, endpoint, serve_session
    ):
        status, body = post_json(
            endpoint.url + "/solve", {"app": "viterbi", "dim": 32}
        )
        assert status == 200
        reference = serve_session.solve("viterbi", 32)
        # The served witness is byte-identical to in-process solving: the
        # JSON list round-trips the int64 path and the digest matches.
        assert body["witness"] == [int(x) for x in reference.witness]
        assert body["witness_sha256"] == witness_digest(reference)
        assert len(body["witness_sha256"]) == 64

    def test_witness_free_app_answers_neither_witness_key(self, endpoint):
        status, body = post_json(endpoint.url + "/solve", {"app": "lcs", "dim": 48})
        assert status == 200
        assert "witness" not in body and "witness_sha256" not in body

    def test_metrics_and_healthz(self, endpoint):
        post_json(endpoint.url + "/solve", {"app": "lcs", "dim": 48})
        metrics = get_json(endpoint.url + "/metrics")
        assert metrics["requests"]["completed"] >= 1
        assert "histogram" in metrics["batches"]
        health = get_json(endpoint.url + "/healthz")
        assert health["status"] == "ok" and health["uptime_s"] >= 0


class TestErrorMapping:
    def test_unknown_app_maps_to_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(endpoint.url + "/solve", {"app": "no-such-app", "dim": 8})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "UnknownApplicationError"

    def test_body_without_app_maps_to_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(endpoint.url + "/solve", {"dim": 8})
        assert excinfo.value.code == 400

    def test_unknown_route_maps_to_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(endpoint.url + "/nope")
        assert excinfo.value.code == 404

    def test_non_framework_error_maps_to_500_not_dropped_connection(
        self, endpoint
    ):
        # A bogus plan kwarg raises TypeError in the app constructor; the
        # handler must still answer a JSON error body, never drop the socket.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                endpoint.url + "/solve",
                {"app": "lcs", "dim": 48, "bogus_kwarg": 1},
            )
        assert excinfo.value.code == 500
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "TypeError"

    def test_backpressure_maps_to_429(self, serve_session):
        # A server that is not started never drains, so filling the queue
        # through the back door makes the next HTTP request overflow.
        server = ReproServer(serve_session, ServerConfig(queue_capacity=1))
        ep = ServingEndpoint(server, port=0)
        thread = threading.Thread(target=ep._httpd.serve_forever, daemon=True)
        thread.start()
        try:
            server.submit("lcs", 48)  # occupies the single queue slot
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(ep.url + "/solve", {"app": "lcs", "dim": 48})
            assert excinfo.value.code == 429
            body = json.loads(excinfo.value.read())
            assert body["error"]["type"] == "BackpressureError"
        finally:
            ep._httpd.shutdown()
            thread.join(timeout=10)
            server.start()
            server.close()


class TestFaultTolerantRoutes:
    def test_readyz_reports_per_shard_state(self, endpoint):
        body = get_json(endpoint.url + "/readyz")
        assert body["ready"] is True and body["running"] is True
        assert body["degraded"] is False
        assert body["shards"][0]["state"] == "healthy"
        assert "restarts" in body and "circuit_open" in body

    def test_expired_deadline_maps_to_504(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                endpoint.url + "/solve",
                {"app": "lcs", "dim": 48, "deadline_s": 1e-6},
            )
        assert excinfo.value.code == 504
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "DeadlineError"

    def test_malformed_deadline_maps_to_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(
                endpoint.url + "/solve",
                {"app": "lcs", "dim": 48, "deadline_s": "soonish"},
            )
        assert excinfo.value.code == 400

    def test_429_carries_a_retry_after_header(self, serve_session):
        # Same back-door overflow as the backpressure mapping test above.
        server = ReproServer(serve_session, ServerConfig(queue_capacity=1))
        ep = ServingEndpoint(server, port=0)
        thread = threading.Thread(target=ep._httpd.serve_forever, daemon=True)
        thread.start()
        try:
            server.submit("lcs", 48)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(ep.url + "/solve", {"app": "lcs", "dim": 48})
            assert excinfo.value.code == 429
            assert excinfo.value.headers.get("Retry-After") == "1"
        finally:
            ep._httpd.shutdown()
            thread.join(timeout=10)
            server.start()
            server.close()


class TestShutdown:
    def test_post_shutdown_stops_the_accept_loop(self, serve_session):
        server = ReproServer(serve_session, ServerConfig(queue_capacity=8))
        ep = ServingEndpoint(server, port=0)
        thread = threading.Thread(target=ep.serve_forever, daemon=True)
        thread.start()
        request = urllib.request.Request(ep.url + "/shutdown", method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 202
        thread.join(timeout=10)
        assert not thread.is_alive() and ep.shutdown_requested
        server.close()
