"""Tests for the load generator and the scripts/check_serve.py gate."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.exceptions import UsageError
from repro.server import (
    InProcessTarget,
    LoadgenConfig,
    ReproServer,
    ServerConfig,
    build_reference,
    parse_mix,
    run_loadgen,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

MIX = parse_mix("lcs:48,edit-distance:40")


class TestParseMix:
    def test_round_trip(self):
        assert parse_mix("lcs:48, edit-distance:40") == (
            ("lcs", 48),
            ("edit-distance", 40),
        )

    def test_malformed_entries_raise_usage_error(self):
        with pytest.raises(UsageError):
            parse_mix("lcs")
        with pytest.raises(UsageError):
            parse_mix("lcs:abc")
        with pytest.raises(UsageError):
            parse_mix(",")


class TestLoadgenConfig:
    def test_validation(self):
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, requests=0)
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, clients=0)
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, rate_rps=0.0)


@pytest.fixture(scope="module")
def loadgen_artifact(serve_session):
    """One closed-loop in-process run, verified, shared by the tests below."""
    reference = build_reference(serve_session, MIX, "functional")
    with ReproServer(serve_session, ServerConfig(queue_capacity=64)) as server:
        payload = run_loadgen(
            InProcessTarget(server),
            LoadgenConfig(mix=MIX, requests=24, clients=4),
            reference,
        )
    return payload


class TestClosedLoop:
    def test_all_requests_complete_and_verify(self, loadgen_artifact):
        results = loadgen_artifact["results"]
        assert results["completed"] == 24
        assert results["failed"] == 0 and results["mismatches"] == 0
        assert results["throughput_rps"] > 0
        assert results["latency_ms"]["samples"] == 24

    def test_artifact_is_json_safe_with_reference_timings(self, loadgen_artifact):
        payload = json.loads(json.dumps(loadgen_artifact))
        assert payload["meta"]["loop"] == "closed"
        assert payload["reference"]["mean_solve_ms"] > 0
        assert set(payload["reference"]["solve_ms"]) == {"lcs:48", "edit-distance:40"}
        assert payload["server_metrics"]["requests"]["completed"] >= 24


class TestOpenLoop:
    def test_rate_paced_run_completes(self, serve_session):
        with ReproServer(serve_session, ServerConfig(queue_capacity=64)) as server:
            payload = run_loadgen(
                InProcessTarget(server),
                LoadgenConfig(mix=MIX, requests=8, clients=2, rate_rps=200.0),
            )
        assert payload["meta"]["loop"] == "open"
        assert payload["results"]["completed"] == 8
        assert payload["reference"] is None


class TestCheckServeGate:
    def run_gate(self, *argv):
        """Run scripts/check_serve.py; return (exit code, stdout)."""
        process = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_serve.py"), *argv],
            capture_output=True,
            text=True,
        )
        return process.returncode, process.stdout + process.stderr

    def test_fresh_artifact_passes_against_itself(self, loadgen_artifact, tmp_path):
        artifact = tmp_path / "fresh.json"
        artifact.write_text(json.dumps(loadgen_artifact))
        code, output = self.run_gate(
            "--fresh", str(artifact), "--baseline", str(artifact),
            "--min-completed", "20",
        )
        assert code == 0, output
        assert "serve check OK" in output

    def test_committed_baseline_is_well_formed(self, loadgen_artifact, tmp_path):
        artifact = tmp_path / "fresh.json"
        artifact.write_text(json.dumps(loadgen_artifact))
        code, output = self.run_gate(
            "--fresh", str(artifact),
            "--baseline", str(REPO_ROOT / "benchmarks/results/serve_baseline.json"),
            "--min-completed", "20", "--threshold", "25.0",
        )
        assert code == 0, output

    def test_mismatches_fail_the_gate(self, loadgen_artifact, tmp_path):
        broken = json.loads(json.dumps(loadgen_artifact))
        broken["results"]["mismatches"] = 2
        artifact = tmp_path / "broken.json"
        artifact.write_text(json.dumps(broken))
        code, output = self.run_gate(
            "--fresh", str(artifact), "--baseline", str(artifact),
            "--min-completed", "20",
        )
        assert code == 1 and "did not match" in output

    def test_gross_latency_regression_fails_the_gate(
        self, loadgen_artifact, tmp_path
    ):
        slow = json.loads(json.dumps(loadgen_artifact))
        for key in ("p50", "p90", "p95", "p99", "mean", "max"):
            slow["results"]["latency_ms"][key] *= 10
        fresh = tmp_path / "slow.json"
        fresh.write_text(json.dumps(slow))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(loadgen_artifact))
        code, output = self.run_gate(
            "--fresh", str(fresh), "--baseline", str(baseline),
            "--min-completed", "20",
        )
        assert code == 1 and "overhead" in output


class FlakyTarget:
    """A scriptable target: raises the queued errors, then answers."""

    kind = "stub"

    def __init__(self, errors=()):
        self.errors = list(errors)
        self.calls = 0
        self.deadlines_seen = []

    def describe(self):
        return "flaky-stub"

    def solve(self, app, dim, mode, timeout_s, deadline_s=None):
        self.calls += 1
        self.deadlines_seen.append(deadline_s)
        if self.errors:
            raise self.errors.pop(0)
        return {"app": app, "dim": dim, "value": 1.0}

    def metrics(self, timeout_s=10.0):
        return {}


class HTTPStatusError(Exception):
    """An exception carrying an HTTP ``status``, like HTTPTarget raises."""

    def __init__(self, status, message="status error"):
        super().__init__(message)
        self.status = status


class TestClientRetries:
    """Backpressure is retried with backoff; deadline misses are terminal."""

    def run_one(self, target, **config_kwargs):
        config = LoadgenConfig(
            mix=parse_mix("lcs:48"),
            requests=1,
            clients=1,
            retry_base_s=0.001,
            **config_kwargs,
        )
        return run_loadgen(target, config)["results"]

    def test_backpressure_is_retried_until_it_clears(self):
        from repro.core.exceptions import BackpressureError

        target = FlakyTarget([BackpressureError("full")] * 2)
        results = self.run_one(target, retries=3)
        assert results["completed"] == 1
        assert results["retries"] == 2
        assert results["rejected"] == 0
        assert target.calls == 3

    def test_retry_budget_exhaustion_counts_rejected(self):
        target = FlakyTarget([HTTPStatusError(429)] * 10)
        results = self.run_one(target, retries=2)
        assert results["completed"] == 0
        assert results["rejected"] == 1
        assert results["retries"] == 2
        assert target.calls == 3  # first attempt + the retry budget

    def test_deadline_expiry_is_terminal_not_retried(self):
        from repro.core.exceptions import DeadlineError

        for error in (DeadlineError("too late"), HTTPStatusError(504)):
            target = FlakyTarget([error])
            results = self.run_one(target, retries=5)
            assert results["deadline_expired"] == 1
            assert results["retries"] == 0
            assert target.calls == 1  # never retried

    def test_deadline_config_is_sent_with_every_request(self):
        target = FlakyTarget()
        self.run_one(target, deadline_s=2.5)
        assert target.deadlines_seen == [2.5]

    def test_retry_knob_validation(self):
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, retries=-1)
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, retry_base_s=0.0)
        with pytest.raises(UsageError):
            LoadgenConfig(mix=MIX, deadline_s=0.0)
