"""Trace generation, record/replay round-trips and the cache-efficacy path.

A trace must be a *contract*: the same seed always generates the same
request stream, a saved trace replays bit-exactly, and anything that would
silently change the workload (stale format, foreign file, malformed
entries) is a typed :class:`~repro.core.exceptions.CacheError` that the CLI
maps to exit code 3.
"""

import json

import numpy as np
import pytest

from repro.cli import EXIT_ARTIFACT, main
from repro.core.exceptions import CacheError, UsageError
from repro.server import (
    InProcessTarget,
    LoadgenConfig,
    ReproServer,
    RequestTrace,
    ServerConfig,
    build_reference,
    build_schedule,
    generate_trace,
    load_trace,
    run_loadgen,
    save_trace,
    zipf_weights,
)
from repro.server.trace import TRACE_FORMAT_VERSION
from repro.session import Session

MIX = (("lcs", 20), ("edit-distance", 18), ("matrix-chain", 16))


class TestGeneration:
    def test_same_seed_generates_the_same_trace(self):
        first = generate_trace(MIX, 50, seed=9, zipf_s=1.3)
        second = generate_trace(MIX, 50, seed=9, zipf_s=1.3)
        assert first.entries == second.entries
        assert first.meta == second.meta
        assert len(first) == 50

    def test_zipf_weights_are_rank_monotone(self):
        weights = zipf_weights(6, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] > weights[i + 1] for i in range(5))
        flat = zipf_weights(6, 0.0)
        assert np.allclose(flat, 1 / 6)

    def test_skew_concentrates_on_the_head(self):
        trace = generate_trace(MIX, 400, seed=1, zipf_s=1.5)
        apps = [entry["app"] for entry in trace.entries]
        head = apps.count(MIX[0][0])
        tail = apps.count(MIX[-1][0])
        assert head > tail, "rank 1 must dominate rank 3 under Zipf skew"
        assert set(apps) == {app for app, _ in MIX}, "the tail stays present"

    def test_open_loop_offsets_are_monotone_at_the_mean_rate(self):
        trace = generate_trace(MIX, 300, seed=2, rate_rps=50.0, burst=1.0)
        offsets = [entry["offset_s"] for entry in trace.entries]
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))
        mean_gap = offsets[-1] / len(offsets)
        assert mean_gap == pytest.approx(1 / 50.0, rel=0.35)

    def test_burst_raises_gap_variance_not_the_mean(self):
        smooth = generate_trace(MIX, 600, seed=4, rate_rps=100.0, burst=1.0)
        bursty = generate_trace(MIX, 600, seed=4, rate_rps=100.0, burst=8.0)

        def gaps(trace):
            offsets = [entry["offset_s"] for entry in trace.entries]
            return np.diff([0.0] + offsets)

        assert np.mean(gaps(bursty)) == pytest.approx(np.mean(gaps(smooth)), rel=0.4)
        assert np.std(gaps(bursty)) > 2 * np.std(gaps(smooth))

    def test_closed_loop_has_no_offsets(self):
        trace = generate_trace(MIX, 10, seed=0)
        assert all(entry["offset_s"] is None for entry in trace.entries)
        assert trace.distinct_mix() and set(trace.distinct_mix()) <= set(MIX)

    def test_bad_arguments_are_usage_errors(self):
        with pytest.raises(UsageError):
            generate_trace(MIX, 0, seed=1)
        with pytest.raises(UsageError):
            generate_trace(MIX, 10, seed=1, zipf_s=-1)
        with pytest.raises(UsageError):
            generate_trace(MIX, 10, seed=1, burst=0)
        with pytest.raises(UsageError):
            generate_trace(MIX, 10, seed=1, rate_rps=0)


class TestRoundTrip:
    def test_save_load_is_identity(self, tmp_path):
        trace = generate_trace(MIX, 40, seed=13, rate_rps=25.0, burst=2.0)
        path = save_trace(trace, tmp_path / "trace.json")
        loaded = load_trace(path)
        assert loaded.entries == trace.entries
        assert loaded.meta == trace.meta
        assert loaded.schedule() == trace.schedule()

    def test_missing_file_raises_cache_error(self, tmp_path):
        with pytest.raises(CacheError):
            load_trace(tmp_path / "nope.json")

    def test_non_json_raises_cache_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{broken")
        with pytest.raises(CacheError):
            load_trace(path)

    def test_foreign_json_raises_cache_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format_version": 1, "results": {}}))
        with pytest.raises(CacheError):
            load_trace(path)

    def test_stale_format_version_raises_cache_error(self, tmp_path):
        trace = generate_trace(MIX, 5, seed=1)
        path = save_trace(trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = TRACE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            load_trace(path)

    def test_malformed_entries_raise_cache_error(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": TRACE_FORMAT_VERSION,
                    "kind": "request-trace",
                    "meta": {},
                    "entries": [{"app": "lcs", "dim": "not-an-int"}],
                }
            )
        )
        with pytest.raises(CacheError):
            load_trace(path)

    def test_cli_maps_stale_trace_to_exit_3(self, tmp_path):
        trace = generate_trace(MIX, 5, seed=1)
        path = save_trace(trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        code = main(
            [
                "loadgen",
                "--system",
                "i3-540",
                "--space",
                "tiny",
                "--trace",
                str(path),
                "--out",
                str(tmp_path / "artifact.json"),
            ]
        )
        assert code == EXIT_ARTIFACT

    def test_cli_rejects_record_and_replay_together(self, tmp_path):
        code = main(
            [
                "loadgen",
                "--trace",
                str(tmp_path / "a.json"),
                "--trace-out",
                str(tmp_path / "b.json"),
            ]
        )
        assert code == 2


class TestSchedule:
    def test_round_robin_schedule_matches_the_mix_cycle(self):
        config = LoadgenConfig(mix=MIX, requests=7, rate_rps=None)
        schedule = build_schedule(config)
        assert [(app, dim) for app, dim, _ in schedule] == [
            MIX[i % len(MIX)] for i in range(7)
        ]
        assert all(offset is None for _, _, offset in schedule)

    def test_open_loop_schedule_paces_evenly(self):
        config = LoadgenConfig(mix=MIX, requests=4, rate_rps=10.0)
        schedule = build_schedule(config)
        assert [offset for _, _, offset in schedule] == [0.0, 0.1, 0.2, 0.3]

    def test_trace_overrides_the_config(self):
        trace = generate_trace(MIX, 9, seed=3)
        config = LoadgenConfig(mix=(("lcs", 999),), requests=2)
        schedule = build_schedule(config, trace)
        assert len(schedule) == 9
        assert schedule == trace.schedule()


class TestCacheEfficacy:
    def test_cold_then_warm_replay_reaches_full_hit_rate(self, tmp_path):
        """The CI cache gate's scenario, in miniature and in-process."""
        trace = generate_trace(MIX, 30, seed=21, zipf_s=1.2)
        config = LoadgenConfig(mix=trace.distinct_mix(), requests=len(trace))
        with Session(system="i3-540") as reference_session:
            reference = build_reference(
                reference_session, trace.distinct_mix(), "functional"
            )

        def replay():
            session = Session(system="i3-540", cache_dir=tmp_path / "cache")
            server = ReproServer(session, ServerConfig(), own_session=True).start()
            try:
                return run_loadgen(
                    InProcessTarget(server), config, reference, trace=trace
                )
            finally:
                server.close()

        cold = replay()
        warm = replay()
        for artifact in (cold, warm):
            assert artifact["results"]["failed"] == 0
            assert artifact["results"]["mismatches"] == 0
            assert artifact["results"]["completed"] == len(trace)
            assert artifact["meta"]["trace"] == trace.meta
        assert cold["cache"]["misses"] == len(trace.distinct_mix())
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hit_rate"] == pytest.approx(1.0)
        assert warm["cache"]["disk_hits"] >= 1, "the warm run starts from disk"

    def test_artifact_counts_unverified_completions(self):
        trace = generate_trace(MIX, 6, seed=2)
        config = LoadgenConfig(mix=trace.distinct_mix(), requests=len(trace))
        session = Session(system="i3-540")
        server = ReproServer(session, ServerConfig(), own_session=True).start()
        try:
            artifact = run_loadgen(
                InProcessTarget(server), config, reference=None, trace=trace
            )
        finally:
            server.close()
        assert artifact["results"]["skipped_verification"] == len(trace)
        assert artifact["results"]["mismatches"] == 0
        assert artifact["cache"] is None, "no --cache-dir, no cache section"


class TestRequestTrace:
    def test_describe_mentions_the_shape(self):
        trace = generate_trace(MIX, 12, seed=5)
        text = trace.describe()
        assert "12 requests" in text and "seed=5" in text
        assert isinstance(trace, RequestTrace)
