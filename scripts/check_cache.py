#!/usr/bin/env python
"""Cache-efficacy gate for CI: deterministic trace replay must hit.

Consumes two ``repro loadgen`` artifacts produced against one persistent
``--cache-dir`` — a **cold** run (empty cache, every distinct signature is
a miss) and a **warm** replay of the *same committed seeded trace* (every
request should be answered from the cache) — and gates:

1. **Correctness first** — both runs completed every request with zero
   failures and zero digest mismatches (a cache serving wrong bytes must
   never pass as a hit-rate win), and zero unverified completions.
2. **Determinism** — both artifacts replayed the committed trace (same
   seed/skew/request count), so the numbers gate like against like.
3. **Efficacy** — the warm run's cache hit rate meets the committed
   ``min_warm_hit_rate``, solves nothing fresh (``max_warm_misses``), and
   its served p50 latency does not exceed the cold run's by more than
   ``max_warm_cold_p50_ratio`` (generous: it exists to catch a cache that
   stopped caching, not scheduling noise).

Usage (CI)::

    python -m repro loadgen --url $URL --trace benchmarks/traces/cache_smoke_trace.json \
        --out /tmp/cache_cold.json              # cold: fresh --cache-dir
    python -m repro loadgen --url $URL --trace benchmarks/traces/cache_smoke_trace.json \
        --out /tmp/cache_warm.json              # warm: same --cache-dir
    python scripts/check_cache.py --cold /tmp/cache_cold.json --warm /tmp/cache_warm.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Trace-meta fields that must agree between an artifact and the baseline.
TRACE_IDENTITY_KEYS = ("seed", "zipf_s", "requests", "mix")


def load(path: Path) -> dict:
    """Read one JSON artifact."""
    return json.loads(path.read_text(encoding="utf-8"))


def correctness(name: str, artifact: dict) -> list[str]:
    """Zero-tolerance correctness problems of one artifact (empty = OK)."""
    problems = []
    results = artifact.get("results")
    if not isinstance(results, dict):
        return [f"{name}: artifact has no 'results' section"]
    expected = (artifact.get("meta") or {}).get("requests")
    if results.get("completed") != expected:
        problems.append(
            f"{name}: only {results.get('completed')} of {expected} requests completed"
        )
    for key in ("failed", "mismatches", "skipped_verification"):
        if results.get(key):
            problems.append(f"{name}: {results[key]} {key.replace('_', ' ')}")
    if not isinstance(artifact.get("cache"), dict):
        problems.append(
            f"{name}: artifact has no cache section (server started without "
            "--cache-dir, or predates the cache schema)"
        )
    return problems


def trace_identity(name: str, artifact: dict, trace_meta: dict) -> list[str]:
    """Problems with the artifact's claim to have replayed the trace."""
    replayed = (artifact.get("meta") or {}).get("trace")
    if not isinstance(replayed, dict):
        return [f"{name}: artifact was not produced from a trace replay"]
    problems = []
    for key in TRACE_IDENTITY_KEYS:
        if replayed.get(key) != trace_meta.get(key):
            problems.append(
                f"{name}: trace {key} is {replayed.get(key)!r}, the committed "
                f"trace has {trace_meta.get(key)!r}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Gate the cold/warm artifact pair; return the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cold", type=Path, required=True, help="cold-run loadgen JSON")
    parser.add_argument("--warm", type=Path, required=True, help="warm-replay loadgen JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/cache_baseline.json"),
        help="committed gate thresholds + trace identity",
    )
    args = parser.parse_args(argv)

    cold = load(args.cold)
    warm = load(args.warm)
    baseline = load(args.baseline)
    gates = baseline["gates"]
    trace_path = Path(baseline["trace"]["path"])
    trace_meta = load(trace_path)["meta"]

    failures = correctness("cold", cold) + correctness("warm", warm)
    failures += trace_identity("cold", cold, trace_meta)
    failures += trace_identity("warm", warm, trace_meta)

    if not failures:
        warm_cache = warm["cache"]
        cold_cache = cold["cache"]
        print(
            f"cold: {cold_cache['hit_rate']:.1%} hit rate, "
            f"{cold_cache['misses']} misses over {cold_cache['lookups']} lookups"
        )
        print(
            f"warm: {warm_cache['hit_rate']:.1%} hit rate, "
            f"{warm_cache['misses']} misses over {warm_cache['lookups']} lookups "
            f"(disk {warm_cache['disk_hits']}, memory {warm_cache['memory_hits']}, "
            f"coalesced {warm_cache['coalesced']})"
        )
        if warm_cache["hit_rate"] < gates["min_warm_hit_rate"]:
            failures.append(
                f"warm hit rate {warm_cache['hit_rate']:.3f} below the "
                f"committed floor {gates['min_warm_hit_rate']}"
            )
        if warm_cache["misses"] > gates["max_warm_misses"]:
            failures.append(
                f"warm replay solved {warm_cache['misses']} requests fresh "
                f"(allowed: {gates['max_warm_misses']}) — the cache is leaking"
            )
        cold_p50 = cold["results"]["latency_ms"]["p50"]
        warm_p50 = warm["results"]["latency_ms"]["p50"]
        ratio = warm_p50 / cold_p50 if cold_p50 > 0 else float("inf")
        print(
            f"served p50: cold {cold_p50:.2f} ms, warm {warm_p50:.2f} ms "
            f"({ratio:.2f}x cold, limit {gates['max_warm_cold_p50_ratio']}x)"
        )
        if ratio > gates["max_warm_cold_p50_ratio"]:
            failures.append(
                f"warm p50 is {ratio:.2f}x the cold p50 (limit "
                f"{gates['max_warm_cold_p50_ratio']}x) — cached answers are "
                "not cheaper than solving"
            )

    if failures:
        print("\ncache check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\ncache check OK: warm replay of {trace_meta['requests']} requests "
        f"(seed {trace_meta['seed']}) served at "
        f"{warm['cache']['hit_rate']:.1%} hit rate with 0 mismatches"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
