#!/usr/bin/env python
"""Smoke-scale serving gate for CI: metrics shape + overhead regression.

Validates a fresh ``repro loadgen`` artifact and compares it against a
committed baseline.  Two layers of checks:

1. **Well-formedness / correctness** — the artifact and its embedded server
   metrics carry every documented field (see ``docs/serving.md``), at least
   ``--min-completed`` requests completed, none failed, and every answer
   matched the in-process reference bit-exactly (``mismatches == 0``).

2. **Performance** — absolute serving latency and throughput are useless
   across CI machines, so both artifacts are reduced to machine-neutral
   ratios before comparison: per-request *overhead* is the served p50/p95
   latency divided by the artifact's own mean direct in-process solve time
   (measured by the load generator on the same machine in the same run).
   The gate fails only when a fresh ratio degrades by more than
   ``--threshold`` over the baseline's — generous by design, like the 3x
   ``check_perf`` gate: it exists to catch gross serving regressions
   (lost batching, lock convoys, leaked queueing), not noise.

Usage (CI)::

    python -m repro loadgen --url http://127.0.0.1:8077 \
        --system i3-540 --space tiny --out /tmp/serve_loadgen.json
    python scripts/check_serve.py --fresh /tmp/serve_loadgen.json \
        --baseline benchmarks/results/serve_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fields every loadgen artifact must carry under ``results``.
REQUIRED_RESULT_KEYS = (
    "completed",
    "rejected",
    "failed",
    "deadline_expired",
    "retries",
    "mismatches",
    "skipped_verification",
    "witness_verified",
    "wall_s",
    "throughput_rps",
    "latency_ms",
)

#: Fields every server-metrics snapshot must carry (the documented schema).
REQUIRED_METRICS_KEYS = (
    "uptime_s",
    "requests",
    "queue",
    "batches",
    "latency_ms",
    "throughput_rps",
)

#: Percentile fields of every latency summary.
REQUIRED_LATENCY_KEYS = ("p50", "p90", "p95", "p99", "mean", "max", "samples")


def load_artifact(path: Path) -> dict:
    """Read one loadgen artifact."""
    return json.loads(path.read_text(encoding="utf-8"))


def well_formed(artifact: dict, min_completed: int) -> list[str]:
    """Schema and correctness problems of one artifact (empty = OK)."""
    problems: list[str] = []
    results = artifact.get("results")
    if not isinstance(results, dict):
        return ["artifact has no 'results' section"]
    for key in REQUIRED_RESULT_KEYS:
        if key not in results:
            problems.append(f"results.{key} missing")
    latency = results.get("latency_ms", {})
    for key in REQUIRED_LATENCY_KEYS:
        if key not in latency:
            problems.append(f"results.latency_ms.{key} missing")
    if latency and not problems:
        if latency["p50"] > latency["p95"] or latency["p95"] > latency["max"]:
            problems.append(
                f"latency percentiles are not monotonic: p50={latency['p50']:.2f} "
                f"p95={latency['p95']:.2f} max={latency['max']:.2f}"
            )
    metrics = artifact.get("server_metrics")
    if not isinstance(metrics, dict) or "error" in metrics:
        problems.append(f"server_metrics missing or unreadable: {metrics!r}")
    else:
        for key in REQUIRED_METRICS_KEYS:
            if key not in metrics:
                problems.append(f"server_metrics.{key} missing")
        batches = metrics.get("batches", {})
        if isinstance(batches, dict) and "histogram" not in batches:
            problems.append("server_metrics.batches.histogram missing")
    completed = results.get("completed", 0)
    if completed < min_completed:
        problems.append(
            f"only {completed} requests completed (need >= {min_completed})"
        )
    if results.get("failed"):
        problems.append(f"{results['failed']} requests failed")
    if results.get("deadline_expired"):
        problems.append(
            f"{results['deadline_expired']} requests missed their deadline "
            "(no chaos is injected in this gate, so none should)"
        )
    if results.get("mismatches"):
        problems.append(
            f"{results['mismatches']} answers did not match in-process solving"
        )
    if results.get("skipped_verification"):
        # The serving gate's whole point is bit-exactness; a completed
        # request nobody verified must fail loudly, not pass vacuously.
        problems.append(
            f"{results['skipped_verification']} completed requests were "
            "never verified (simulate mode or --no-verify?)"
        )
    witness_verified = results.get("witness_verified")
    if witness_verified is not None and witness_verified != completed:
        # Verification covers the (grid, witness) pair; every completed
        # request must have passed it — witness-free apps included (their
        # pair is (digest, None) on both sides).
        problems.append(
            f"witness_verified={witness_verified} != completed={completed}: "
            "some answers passed without full (grid, witness) verification"
        )
    return problems


def overheads(artifact: dict) -> dict[str, float] | None:
    """Machine-neutral ratios of one artifact (None without a reference).

    ``p50``/``p95`` are served-latency-to-direct-solve overhead factors;
    ``service`` is mean direct solve time divided by achieved inter-completion
    time — a utilisation-like throughput ratio (higher is better).
    """
    reference = artifact.get("reference") or {}
    mean_solve_ms = reference.get("mean_solve_ms") or 0.0
    if mean_solve_ms <= 0:
        return None
    # Tolerate truncated artifacts: a missing field means "no ratios", and
    # the well_formed() report (not a KeyError traceback) names the gap.
    results = artifact.get("results") or {}
    latency = results.get("latency_ms") or {}
    if "p50" not in latency or "p95" not in latency or "throughput_rps" not in results:
        return None
    return {
        "p50": latency["p50"] / mean_solve_ms,
        "p95": latency["p95"] / mean_solve_ms,
        "service": results["throughput_rps"] * mean_solve_ms / 1e3,
    }


def main(argv: list[str] | None = None) -> int:
    """Gate a fresh loadgen artifact; return the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True, help="loadgen JSON just measured")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/serve_baseline.json"),
        help="committed baseline loadgen JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="fail when a fresh overhead ratio exceeds baseline by this factor",
    )
    parser.add_argument(
        "--min-completed",
        type=int,
        default=50,
        help="minimum completed requests the fresh run must report",
    )
    args = parser.parse_args(argv)

    fresh = load_artifact(args.fresh)
    baseline = load_artifact(args.baseline)

    failures = [f"fresh: {p}" for p in well_formed(fresh, args.min_completed)]
    # The committed baseline only needs a valid shape, not today's volume.
    failures += [f"baseline: {p}" for p in well_formed(baseline, 1)]

    fresh_ratios = overheads(fresh)
    base_ratios = overheads(baseline)
    if fresh_ratios is None:
        failures.append(
            "fresh artifact has no reference timings (loadgen ran --no-verify?) "
            "or lacks latency/throughput fields"
        )
    if base_ratios is None:
        failures.append(
            "baseline artifact has no reference timings or lacks "
            "latency/throughput fields"
        )
    if fresh_ratios and base_ratios:
        for key, worse_is_higher in (("p50", True), ("p95", True), ("service", False)):
            fresh_value, base_value = fresh_ratios[key], base_ratios[key]
            if worse_is_higher:
                ratio = fresh_value / base_value if base_value > 0 else float("inf")
            else:
                ratio = base_value / fresh_value if fresh_value > 0 else float("inf")
            status = "FAIL" if ratio > args.threshold else "ok"
            print(
                f"{key:<8} baseline {base_value:8.3f}  fresh {fresh_value:8.3f}  "
                f"({ratio:5.2f}x baseline)  {status}"
            )
            if ratio > args.threshold:
                failures.append(
                    f"{key} overhead {ratio:.2f}x worse than baseline "
                    f"(threshold {args.threshold:.1f}x)"
                )

    if failures:
        print("\nserve check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    completed = fresh["results"]["completed"]
    print(
        f"\nserve check OK: {completed} verified requests, metrics well-formed, "
        f"overheads within {args.threshold:.1f}x of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
