#!/usr/bin/env python
"""Docs coverage check: every public class in ``repro.apps`` and
``repro.runtime`` must be mentioned in ``docs/architecture.md``.

Run from the repository root (CI does) or anywhere inside it:

    python scripts/check_docs.py

Exits non-zero listing the undocumented classes, so adding an application
or executor without documenting it fails the build.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "architecture.md"
PACKAGES = ("apps", "runtime")


def public_classes(package: str) -> dict[str, str]:
    """Map of public class name -> defining file for one repro subpackage."""
    classes: dict[str, str] = {}
    for path in sorted((REPO_ROOT / "src" / "repro" / package).glob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                classes[node.name] = f"src/repro/{package}/{path.name}"
    return classes


def main() -> int:
    doc = DOC_PATH.read_text(encoding="utf-8")
    missing: list[tuple[str, str]] = []
    total = 0
    for package in PACKAGES:
        for name, origin in public_classes(package).items():
            total += 1
            if name not in doc:
                missing.append((name, origin))
    if missing:
        print(f"{DOC_PATH.relative_to(REPO_ROOT)} is missing {len(missing)} public classes:")
        for name, origin in missing:
            print(f"  - {name}  ({origin})")
        return 1
    print(f"docs check OK: all {total} public apps/runtime classes documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
