#!/usr/bin/env python
"""Docs coverage checks for the repository.

Four guarantees, all enforced in CI and mirrored by
``tests/test_docs_coverage.py``:

1. every public class in ``repro.apps`` and ``repro.runtime`` is mentioned
   in ``docs/architecture.md`` — adding an application or executor without
   documenting it fails the build;
2. every public class of the measured-autotuning module
   (``repro.autotuner.measured``) is mentioned in ``docs/measured-tuning.md``
   — the profile→train→tune workflow page stays complete;
3. every public class of the serving subsystem (``repro.server``) is
   mentioned in ``docs/serving.md`` — the serving architecture page stays
   complete;
4. every public class of the result-cache package (``repro.cache``) is
   mentioned in ``docs/caching.md`` — the caching page stays complete;
5. every public class of the adaptive-tuning package (``repro.adaptive``)
   is mentioned in ``docs/adaptive.md`` — the online-tuning loop page
   stays complete;
6. every public class of the probabilistic app family (``viterbi.py``,
   ``stochastic_path.py``, ``knapsack.py``) and every public helper of
   ``repro.runtime.compute`` is mentioned in ``docs/apps.md`` — the
   family's recurrence/witness/tolerance reference stays complete;
7. every public class of the execution-policy module
   (``repro.facade.policy``) is mentioned in ``docs/api.md`` — the typed
   override surface stays documented where users plan;
8. every public module, class, function and method under ``src/repro`` has
   a docstring (nested defs and ``_private`` names are exempt).

Run from the repository root (CI does) or anywhere inside it:

    python scripts/check_docs.py

Exits non-zero listing the undocumented items.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
ARCHITECTURE_DOC = REPO_ROOT / "docs" / "architecture.md"
MEASURED_DOC = REPO_ROOT / "docs" / "measured-tuning.md"
SERVING_DOC = REPO_ROOT / "docs" / "serving.md"
CACHING_DOC = REPO_ROOT / "docs" / "caching.md"
ADAPTIVE_DOC = REPO_ROOT / "docs" / "adaptive.md"
#: Packages whose public classes must appear in docs/architecture.md.
PACKAGES = ("apps", "runtime")
#: Module whose public classes must appear in docs/measured-tuning.md.
MEASURED_MODULE = SRC_ROOT / "autotuner" / "measured.py"
#: Package whose public classes must appear in docs/serving.md.
SERVER_PACKAGE = "server"
#: Package whose public classes must appear in docs/caching.md.
CACHE_PACKAGE = "cache"
#: Package whose public classes must appear in docs/adaptive.md.
ADAPTIVE_PACKAGE = "adaptive"
#: The probabilistic app family + shared numerics reference page.
APPS_DOC = REPO_ROOT / "docs" / "apps.md"
#: Modules whose public classes must appear in docs/apps.md.
PROBABILISTIC_MODULES = (
    SRC_ROOT / "apps" / "viterbi.py",
    SRC_ROOT / "apps" / "stochastic_path.py",
    SRC_ROOT / "apps" / "knapsack.py",
)
#: Module whose semiring helpers must appear in docs/apps.md (the rest of
#: its public surface is generic sweep machinery, covered elsewhere).
COMPUTE_MODULE = SRC_ROOT / "runtime" / "compute.py"
SEMIRING_HELPERS = ("logsumexp", "logsumexp_pair", "max_product_pair")
#: The session API reference page.
API_DOC = REPO_ROOT / "docs" / "api.md"
#: Module whose public classes must appear in docs/api.md.
POLICY_MODULE = SRC_ROOT / "facade" / "policy.py"


def public_classes(package: str) -> dict[str, str]:
    """Map of public class name -> defining file for one repro subpackage."""
    classes: dict[str, str] = {}
    for path in sorted((SRC_ROOT / package).glob("*.py")):
        for node in ast.walk(ast.parse(path.read_text(encoding="utf-8"))):
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                classes[node.name] = f"src/repro/{package}/{path.name}"
    return classes


def module_classes(path: Path) -> dict[str, str]:
    """Map of public class name -> defining file for one module."""
    rel = path.relative_to(REPO_ROOT)
    return {
        node.name: str(rel)
        for node in ast.walk(ast.parse(path.read_text(encoding="utf-8")))
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_")
    }


def module_functions(path: Path) -> dict[str, str]:
    """Map of public top-level function name -> defining file for one module."""
    rel = path.relative_to(REPO_ROOT)
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return {
        node.name: str(rel)
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not node.name.startswith("_")
    }


def check_classes_mentioned(doc_path: Path, classes: dict[str, str]) -> list[str]:
    """Classes not mentioned in ``doc_path``, as printable problem lines."""
    if not doc_path.exists():
        return [f"{doc_path.relative_to(REPO_ROOT)} does not exist"]
    doc = doc_path.read_text(encoding="utf-8")
    return [
        f"{doc_path.relative_to(REPO_ROOT)} does not mention {name}  ({origin})"
        for name, origin in classes.items()
        if name not in doc
    ]


def docstring_gaps(root: Path) -> list[str]:
    """Public defs without docstrings under ``root``, as printable lines.

    Walks module top-levels and the bodies of *public* classes only, so
    nested helper functions and ``_private`` classes are exempt — the same
    rule throughout: if a name is part of the public surface, it needs a
    docstring.
    """
    problems: list[str] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            problems.append(f"{rel}: module has no docstring")

        def visit(nodes: list[ast.stmt], prefix: str) -> None:
            for node in nodes:
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        problems.append(f"{rel}:{node.lineno}: class {prefix}{node.name}")
                    visit(node.body, f"{prefix}{node.name}.")
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        problems.append(f"{rel}:{node.lineno}: def {prefix}{node.name}")

        visit(tree.body, "")
    return problems


def main() -> int:
    """Run every check; print problems and return the exit code."""
    problems: list[str] = []
    total_classes = 0
    for package in PACKAGES:
        classes = public_classes(package)
        total_classes += len(classes)
        problems += check_classes_mentioned(ARCHITECTURE_DOC, classes)
    measured = module_classes(MEASURED_MODULE)
    total_classes += len(measured)
    problems += check_classes_mentioned(MEASURED_DOC, measured)
    server = public_classes(SERVER_PACKAGE)
    total_classes += len(server)
    problems += check_classes_mentioned(SERVING_DOC, server)
    cache = public_classes(CACHE_PACKAGE)
    total_classes += len(cache)
    problems += check_classes_mentioned(CACHING_DOC, cache)
    adaptive = public_classes(ADAPTIVE_PACKAGE)
    total_classes += len(adaptive)
    problems += check_classes_mentioned(ADAPTIVE_DOC, adaptive)
    probabilistic: dict[str, str] = {
        name: origin
        for name, origin in module_functions(COMPUTE_MODULE).items()
        if name in SEMIRING_HELPERS
    }
    for module in PROBABILISTIC_MODULES:
        probabilistic.update(module_classes(module))
    total_classes += len(probabilistic)
    problems += check_classes_mentioned(APPS_DOC, probabilistic)
    policy = module_classes(POLICY_MODULE)
    total_classes += len(policy)
    problems += check_classes_mentioned(API_DOC, policy)
    gaps = docstring_gaps(SRC_ROOT)
    problems += gaps

    if problems:
        print(f"docs check FAILED with {len(problems)} problems:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs check OK: {total_classes} public classes documented, "
        f"no public docstring gaps under src/repro"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
