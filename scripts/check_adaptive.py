#!/usr/bin/env python
"""Adaptive-tuning gate for CI: drift fires where injected, nowhere else.

Consumes two ``repro loadgen`` artifacts produced against shadow-mode
servers replaying the *same committed seeded trace* — a **stable** run
(no faults) and a **drifted** run (the committed ``slow@`` fault plan
stretches two consecutive executions of one signature) — and gates the
loop's calibration:

1. **Correctness first** — both runs completed every request with zero
   failures, zero digest mismatches and zero unverified completions (an
   adaptive loop is worthless the moment answers change), and both
   artifacts carry an ``adaptive`` delta section (the servers really ran
   with the loop enabled).
2. **Determinism** — both artifacts replayed the committed trace (same
   seed/skew/request count), so drift counts gate like against like.
3. **No false positives** — the stable replay produced **zero** drift
   events, zero would-be swaps and zero internal errors, and counted
   every completed request as an observation.
4. **No false negatives** — the drifted replay produced drift events
   within the committed band, applied **zero** swaps (shadow observes,
   never acts) and hit zero internal errors.

Usage (CI)::

    python -m repro loadgen --url $STABLE_URL \
        --trace benchmarks/traces/cache_smoke_trace.json --clients 1 \
        --out /tmp/adaptive_stable.json
    python -m repro loadgen --url $DRIFTED_URL \
        --trace benchmarks/traces/cache_smoke_trace.json --clients 1 \
        --out /tmp/adaptive_drifted.json
    python scripts/check_adaptive.py --stable /tmp/adaptive_stable.json \
        --drifted /tmp/adaptive_drifted.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Trace-meta fields that must agree between an artifact and the baseline.
TRACE_IDENTITY_KEYS = ("seed", "zipf_s", "requests", "mix")


def load(path: Path) -> dict:
    """Read one JSON artifact."""
    return json.loads(path.read_text(encoding="utf-8"))


def correctness(name: str, artifact: dict) -> list[str]:
    """Zero-tolerance correctness problems of one artifact (empty = OK)."""
    problems = []
    results = artifact.get("results")
    if not isinstance(results, dict):
        return [f"{name}: artifact has no 'results' section"]
    expected = (artifact.get("meta") or {}).get("requests")
    if results.get("completed") != expected:
        problems.append(
            f"{name}: only {results.get('completed')} of {expected} requests completed"
        )
    for key in ("failed", "mismatches", "skipped_verification"):
        if results.get(key):
            problems.append(f"{name}: {results[key]} {key.replace('_', ' ')}")
    if not isinstance(artifact.get("adaptive"), dict):
        problems.append(
            f"{name}: artifact has no adaptive section (server ran with "
            "--adaptive off, or predates the adaptive schema)"
        )
    return problems


def trace_identity(name: str, artifact: dict, trace_meta: dict) -> list[str]:
    """Problems with the artifact's claim to have replayed the trace."""
    replayed = (artifact.get("meta") or {}).get("trace")
    if not isinstance(replayed, dict):
        return [f"{name}: artifact was not produced from a trace replay"]
    problems = []
    for key in TRACE_IDENTITY_KEYS:
        if replayed.get(key) != trace_meta.get(key):
            problems.append(
                f"{name}: trace {key} is {replayed.get(key)!r}, the committed "
                f"trace has {trace_meta.get(key)!r}"
            )
    return problems


def loop_health(name: str, artifact: dict) -> list[str]:
    """Problems every adaptive run must be free of, stable or drifted."""
    adaptive = artifact["adaptive"]
    problems = []
    if adaptive.get("mode") != "shadow":
        problems.append(
            f"{name}: server ran --adaptive {adaptive.get('mode')!r}, the "
            "gate expects shadow"
        )
    if adaptive.get("errors"):
        problems.append(
            f"{name}: {adaptive['errors']} internal adaptive errors — the "
            "loop must never fail silently"
        )
    completed = artifact["results"]["completed"]
    if adaptive.get("observations") != completed:
        problems.append(
            f"{name}: {adaptive.get('observations')} observations for "
            f"{completed} completed requests — the loop is missing traffic"
        )
    if adaptive.get("swaps_applied"):
        problems.append(
            f"{name}: {adaptive['swaps_applied']} swaps applied in shadow "
            "mode — shadow must observe, never act"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Gate the stable/drifted artifact pair; return the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stable", type=Path, required=True, help="no-fault loadgen JSON"
    )
    parser.add_argument(
        "--drifted", type=Path, required=True, help="fault-injected loadgen JSON"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/adaptive_baseline.json"),
        help="committed gate thresholds + trace identity + fault plan",
    )
    args = parser.parse_args(argv)

    stable = load(args.stable)
    drifted = load(args.drifted)
    baseline = load(args.baseline)
    gates = baseline["gates"]
    trace_meta = load(Path(baseline["trace"]["path"]))["meta"]

    failures = correctness("stable", stable) + correctness("drifted", drifted)
    failures += trace_identity("stable", stable, trace_meta)
    failures += trace_identity("drifted", drifted, trace_meta)

    if not failures:
        failures += loop_health("stable", stable) + loop_health("drifted", drifted)
        stable_adaptive = stable["adaptive"]
        drifted_adaptive = drifted["adaptive"]
        print(
            f"stable:  {stable_adaptive['observations']} observations, "
            f"{stable_adaptive['drift_events']} drift events, "
            f"{stable_adaptive['would_swap']} would-swap"
        )
        print(
            f"drifted: {drifted_adaptive['observations']} observations, "
            f"{drifted_adaptive['drift_events']} drift events "
            f"(committed band {gates['min_drift_events']}.."
            f"{gates['max_drift_events']}), "
            f"{drifted_adaptive['shadow_evaluations']} shadow evaluations"
        )
        if stable_adaptive["drift_events"] > gates["max_stable_drift_events"]:
            failures.append(
                f"stable replay latched {stable_adaptive['drift_events']} drift "
                f"events (allowed: {gates['max_stable_drift_events']}) — the "
                "detector is firing on noise"
            )
        if stable_adaptive["would_swap"]:
            failures.append(
                f"stable replay proposed {stable_adaptive['would_swap']} swaps "
                "with no drift injected"
            )
        if drifted_adaptive["drift_events"] < gates["min_drift_events"]:
            failures.append(
                f"drifted replay latched only {drifted_adaptive['drift_events']} "
                f"drift events (committed minimum: {gates['min_drift_events']}) "
                "— the injected slowdown went undetected"
            )
        if drifted_adaptive["drift_events"] > gates["max_drift_events"]:
            failures.append(
                f"drifted replay latched {drifted_adaptive['drift_events']} "
                f"drift events (committed maximum: {gates['max_drift_events']}) "
                "— drift is firing beyond the injected signature"
            )

    if failures:
        print("\nadaptive check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\nadaptive check OK: {trace_meta['requests']}-request replay "
        f"(seed {trace_meta['seed']}) — 0 false positives stable, "
        f"{drifted['adaptive']['drift_events']} drift events under the "
        "committed fault plan, 0 swaps acted on, 0 errors"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
