#!/usr/bin/env python
"""Public-API surface check: fail CI on unreviewed breaking changes.

The exported surface is everything a downstream user can import and call
without reading the source:

* ``repro.__all__`` (the package exports) and ``repro.server.__all__``
  (the serving subsystem exports);
* the public method signatures of the facade types —
  :class:`repro.session.Session`, :class:`repro.facade.plan.ResolvedPlan`,
  :class:`repro.facade.policy.ExecutionPolicy`,
  :class:`repro.runtime.registry.EngineSpec`,
  :class:`repro.autotuner.protocol.Tuner` and
  :class:`repro.autotuner.protocol.PlanDecision` — and of the serving
  types :class:`repro.server.ReproServer` / :class:`repro.server.ServerConfig`
  / :class:`repro.server.LoadgenConfig`;
* the CLI verb names.

``python scripts/check_api.py`` compares the live surface against the
committed snapshot ``scripts/api_surface.json`` and exits non-zero listing
every drift, so a PR can only change the public API by also changing the
snapshot — making the break explicit in review.  After an *intentional*
change, regenerate with::

    python scripts/check_api.py --update

Run from the repository root (CI does) or anywhere inside it.
"""

from __future__ import annotations

import inspect
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "scripts" / "api_surface.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def _signatures(cls) -> dict[str, str]:
    """Public method/property signatures of one class, name -> signature."""
    out: dict[str, str] = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            out[name] = "<property>"
        elif isinstance(member, (staticmethod, classmethod)):
            out[name] = str(inspect.signature(member.__func__))
        elif callable(member):
            out[name] = str(inspect.signature(member))
    return out


def _dataclass_fields(cls) -> dict[str, str]:
    """Field name -> declared type string of one dataclass."""
    import dataclasses

    return {f.name: str(f.type) for f in dataclasses.fields(cls)}


def current_surface() -> dict:
    """Collect the live public surface of the package."""
    import repro
    import repro.server
    from repro.autotuner.protocol import PlanDecision, Tuner
    from repro.cli import build_parser
    from repro.facade.plan import ResolvedPlan
    from repro.facade.policy import ExecutionPolicy
    from repro.runtime.registry import EngineSpec
    from repro.server import LoadgenConfig, ReproServer, ServerConfig
    from repro.session import Session

    verbs = sorted(
        build_parser()._subparsers._group_actions[0].choices  # noqa: SLF001
    )
    return {
        "repro.__all__": sorted(repro.__all__),
        "repro.server.__all__": sorted(repro.server.__all__),
        "Session.__init__": str(inspect.signature(Session.__init__)),
        "Session": _signatures(Session),
        "ResolvedPlan.fields": _dataclass_fields(ResolvedPlan),
        "ResolvedPlan": _signatures(ResolvedPlan),
        "ExecutionPolicy.fields": _dataclass_fields(ExecutionPolicy),
        "ExecutionPolicy": _signatures(ExecutionPolicy),
        "EngineSpec.fields": _dataclass_fields(EngineSpec),
        "PlanDecision.fields": _dataclass_fields(PlanDecision),
        "Tuner": _signatures(Tuner),
        "ReproServer.__init__": str(inspect.signature(ReproServer.__init__)),
        "ReproServer": _signatures(ReproServer),
        "ServerConfig.fields": _dataclass_fields(ServerConfig),
        "LoadgenConfig.fields": _dataclass_fields(LoadgenConfig),
        "cli.verbs": verbs,
    }


def _flatten(surface: dict, prefix: str = "") -> dict[str, object]:
    """Flatten the nested surface into dotted-path -> value entries."""
    flat: dict[str, object] = {}
    for key, value in surface.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def diff(snapshot: dict, live: dict) -> list[str]:
    """Human-readable drift lines between the snapshot and live surfaces."""
    old, new = _flatten(snapshot), _flatten(live)
    problems = []
    for path in sorted(set(old) | set(new)):
        if path not in new:
            problems.append(f"removed: {path} (was {old[path]!r})")
        elif path not in old:
            problems.append(f"added:   {path} = {new[path]!r}")
        elif old[path] != new[path]:
            problems.append(f"changed: {path}: {old[path]!r} -> {new[path]!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Compare (or with ``--update`` regenerate) the API snapshot."""
    argv = argv if argv is not None else sys.argv[1:]
    live = current_surface()
    if "--update" in argv:
        SNAPSHOT.write_text(json.dumps(live, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT.relative_to(REPO_ROOT)}")
        return 0
    if not SNAPSHOT.exists():
        print(
            f"API check FAILED: no snapshot at {SNAPSHOT.relative_to(REPO_ROOT)}; "
            "run 'python scripts/check_api.py --update'"
        )
        return 1
    snapshot = json.loads(SNAPSHOT.read_text())
    problems = diff(snapshot, live)
    if problems:
        print(f"API check FAILED with {len(problems)} unreviewed surface changes:")
        for problem in problems:
            print(f"  - {problem}")
        print(
            "\nIf the change is intentional, regenerate the snapshot with\n"
            "  python scripts/check_api.py --update\n"
            "and include it in the PR so the break is reviewed explicitly."
        )
        return 1
    flat = _flatten(live)
    print(
        f"API check OK: {len(flat)} surface entries match "
        f"{SNAPSHOT.relative_to(REPO_ROOT)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
