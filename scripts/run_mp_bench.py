#!/usr/bin/env python
"""Measure the multicore backend against the vectorized single-core engine.

Runs the synthetic kernel at one grid size on both the ``vectorized`` and
the ``mp-parallel`` executors, verifies the grids are identical, and writes
the measurements (plus the host's core count) to
``benchmarks/results/mp_bench.json`` — the committed artifact backing the
backend's speedup claim.

Target (ISSUE 2): >= 2x wall-clock over ``vectorized`` on a 1024x1024
synthetic kernel with >= 4 workers.  On hosts with fewer than two cores the
backend falls back to the in-process single-core sweep and the recorded
speedup is ~1x; the artifact stores ``cpu_count`` so readers can tell which
regime was measured.

    PYTHONPATH=src python scripts/run_mp_bench.py --dim 1024 --repeats 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps.synthetic import SyntheticApp  # noqa: E402
from repro.core.params import TunableParams  # noqa: E402
from repro.hardware import platforms  # noqa: E402
from repro.runtime import MPParallelExecutor, VectorizedSerialExecutor  # noqa: E402
from repro.runtime.mp_parallel import resolve_worker_count  # noqa: E402
from repro.version import __version__  # noqa: E402


def time_executor(executor, problem, tunables, repeats: int):
    """Best wall time over ``repeats`` runs; returns (best_s, all_s, result)."""
    walls = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = executor.execute(problem, tunables, mode="functional")
        walls.append(time.perf_counter() - t0)
    return min(walls), walls, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=1024, help="grid side length")
    parser.add_argument("--repeats", type=int, default=3, help="runs per executor (best kept)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: auto-detect; the 2x target assumes >= 4)",
    )
    parser.add_argument("--tile", type=int, default=None, help="cpu tile (default: dim // 8)")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results" / "mp_bench.json",
        help="output JSON path",
    )
    args = parser.parse_args()

    system = platforms.I7_2600K
    workers = resolve_worker_count(args.workers, system)
    tile = args.tile if args.tile is not None else max(32, args.dim // 8)
    problem = SyntheticApp(dim=args.dim).problem(args.dim)

    print(
        f"mp bench: dim={args.dim}, workers={workers} "
        f"(host cpu_count={os.cpu_count()}), tile={tile}, repeats={args.repeats}"
    )

    vec_best, vec_all, vec_result = time_executor(
        VectorizedSerialExecutor(system), problem, TunableParams(), args.repeats
    )
    print(f"  vectorized : best {vec_best:.4f}s  {['%.4f' % w for w in vec_all]}")

    mp_exec = MPParallelExecutor(system, workers=args.workers)
    mp_best, mp_all, mp_result = time_executor(
        mp_exec, problem, TunableParams(cpu_tile=tile), args.repeats
    )
    mode = mp_result.stats["mode"]
    print(f"  mp-parallel: best {mp_best:.4f}s  {['%.4f' % w for w in mp_all]}  [{mode}]")

    identical = bool(np.array_equal(vec_result.grid.values, mp_result.grid.values))
    speedup = vec_best / mp_best
    print(f"  grids identical: {identical}; speedup vs vectorized: {speedup:.2f}x")

    # Cost-model expectation at multicore worker counts: what the same
    # instance predicts on hosts this benchmark machine may not be (the
    # parallel-efficiency-aware rtime of docs/tuning.md), plus the
    # larger/coarser instances the backend is actually tuned towards.
    from repro.core.params import InputParams

    params = problem.input_params()
    model = mp_exec.cost_model
    vec_rtime = model.vectorized_time(params)
    predicted = {
        f"workers_{w}": {
            "mp_rtime_s": model.mp_parallel_time(params, tile, w),
            "speedup_vs_vectorized": vec_rtime / model.mp_parallel_time(params, tile, w),
        }
        for w in (2, 4, 8)
    }
    for name, entry in predicted.items():
        print(
            f"  cost model {name}: {entry['mp_rtime_s']:.4f}s rtime, "
            f"{entry['speedup_vs_vectorized']:.2f}x vs vectorized"
        )
    scaling = {}
    for big_dim, big_tsize in ((1900, 750), (2700, 100)):
        big = InputParams(dim=big_dim, tsize=big_tsize, dsize=1)
        big_vec = model.vectorized_time(big)
        best = min(
            (model.mp_parallel_time(big, t, w), t, w)
            for t in (32, 64, 128)
            for w in (4, 8)
        )
        scaling[f"dim{big_dim}_tsize{big_tsize:g}"] = {
            "vectorized_rtime_s": big_vec,
            "mp_rtime_s": best[0],
            "cpu_tile": best[1],
            "workers": best[2],
            "speedup_vs_vectorized": big_vec / best[0],
        }
        print(
            f"  cost model dim={big_dim} tsize={big_tsize:g}: "
            f"{big_vec / best[0]:.2f}x vs vectorized "
            f"(tile={best[1]}, workers={best[2]})"
        )

    payload = {
        "meta": {
            "benchmark": "mp-parallel vs vectorized, synthetic kernel",
            "dim": args.dim,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "workers": mp_result.stats["workers"],
            "mode": mode,
            "cpu_tile": tile,
            "python": sys.version.split()[0],
            "version": __version__,
            "target": "speedup_vs_vectorized >= 2.0 at dim 1024 with >= 4 workers; "
            "hosts with cpu_count < 2 fall back to the in-process single-core "
            "sweep and measure ~1x",
        },
        "results": {
            "vectorized_wall_s_best": vec_best,
            "vectorized_wall_s_all": vec_all,
            "mp_parallel_wall_s_best": mp_best,
            "mp_parallel_wall_s_all": mp_all,
            "speedup_vs_vectorized": speedup,
            "grids_identical": identical,
            "tiles_executed": mp_result.stats["tiles_executed"],
            "tile_waves": mp_result.stats["tile_waves"],
        },
        "predicted": {
            "note": "analytic cost-model rtime (vectorized_time vs "
            "mp_parallel_time with the parallel-efficiency term) for "
            "multicore worker counts, independent of this host's cores",
            "vectorized_rtime_s": vec_rtime,
            **predicted,
            "larger_instances": scaling,
        },
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
