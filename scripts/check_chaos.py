#!/usr/bin/env python
"""Chaos-smoke gate for CI: injected faults must be survived bit-exactly.

Consumes one ``repro loadgen`` artifact produced by replaying the committed
seeded trace against a ``repro serve --chaos <plan>`` endpoint, plus the
committed chaos baseline (the plan and its machine-neutral survival
thresholds), and gates:

1. **The chaos actually happened** — the server's supervisor counters
   (embedded in the artifact's ``server_metrics.supervisor`` section)
   report every scheduled fault injected, including at least
   ``min_kills`` shard kills, and the fault plan string matches the
   committed one exactly (a drifted plan would gate nothing).
2. **Survival** — the supervisor restarted the killed shard(s) within its
   restart budget (``min_restarts <= restarts <= max_restarts``) and
   re-dispatched the in-flight work (``redispatches >= min_kills``); the
   serving process never went dark.
3. **Bit-exactness** — every completed response matched the uncached
   in-process reference (zero mismatches, zero unverified completions,
   zero generic failures).  A fault-tolerance layer that survives crashes
   by serving wrong grids must never pass.
4. **No hangs** — every issued request resolved with a *typed* outcome:
   ``completed + rejected + deadline_expired == requests``.  Deadline
   expiries are expected (the ``drop`` fault discards responses so the
   waiters fail at their deadline with 504) but bounded:
   ``min_deadline_expired <= deadline_expired <= max_deadline_expired``,
   and the server's own ``deadline_expired`` counter must agree that the
   misses were typed, not silent.

Every threshold is a machine-neutral count or ratio — no wall-clock
numbers cross CI machines.

Usage (CI)::

    python -m repro serve --port 0 --ready-file /tmp/chaos.addr \
        --chaos "$(python -c 'import json;print(json.load(open("benchmarks/results/chaos_baseline.json"))["chaos"]["plan"])')" \
        --default-deadline 4 &
    python -m repro loadgen --url http://$(cat /tmp/chaos.addr) \
        --trace benchmarks/traces/cache_smoke_trace.json --retries 5 \
        --out /tmp/chaos_loadgen.json
    python scripts/check_chaos.py --fresh /tmp/chaos_loadgen.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Trace-meta fields that must agree between the artifact and the baseline.
TRACE_IDENTITY_KEYS = ("seed", "zipf_s", "requests", "mix")

#: Supervisor counters the /metrics snapshot must expose (the acceptance
#: contract of the fault-tolerance layer).
REQUIRED_SUPERVISOR_KEYS = ("faults_injected", "restarts", "redispatches", "shards")


def load(path: Path) -> dict:
    """Read one JSON artifact."""
    return json.loads(path.read_text(encoding="utf-8"))


def trace_identity(artifact: dict, trace_meta: dict) -> list[str]:
    """Problems with the artifact's claim to have replayed the trace."""
    replayed = (artifact.get("meta") or {}).get("trace")
    if not isinstance(replayed, dict):
        return ["artifact was not produced from a trace replay"]
    problems = []
    for key in TRACE_IDENTITY_KEYS:
        if replayed.get(key) != trace_meta.get(key):
            problems.append(
                f"trace {key} is {replayed.get(key)!r}, the committed "
                f"trace has {trace_meta.get(key)!r}"
            )
    return problems


def chaos_evidence(artifact: dict, baseline: dict) -> tuple[dict | None, list[str]]:
    """The supervisor section and the problems with its fault evidence."""
    metrics = artifact.get("server_metrics")
    if not isinstance(metrics, dict) or "error" in metrics:
        return None, [f"server_metrics missing or unreadable: {metrics!r}"]
    supervisor = metrics.get("supervisor")
    if not isinstance(supervisor, dict):
        return None, ["server_metrics has no supervisor section"]
    problems = [
        f"supervisor.{key} missing from /metrics"
        for key in REQUIRED_SUPERVISOR_KEYS
        if key not in supervisor
    ]
    if "deadline_expired" not in (metrics.get("requests") or {}):
        problems.append("requests.deadline_expired missing from /metrics")
    faults = supervisor.get("faults") or {}
    committed_plan = baseline["chaos"]["plan"]
    if faults.get("plan") != committed_plan:
        problems.append(
            f"fault plan {faults.get('plan')!r} does not match the committed "
            f"plan {committed_plan!r}"
        )
    if faults.get("injected") != faults.get("scheduled"):
        problems.append(
            f"only {faults.get('injected')} of {faults.get('scheduled')} "
            "scheduled faults were injected — the trace never reached them"
        )
    return supervisor, problems


def main(argv: list[str] | None = None) -> int:
    """Gate the chaos-replay artifact; return the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, required=True, help="chaos-run loadgen JSON"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/chaos_baseline.json"),
        help="committed chaos plan + survival thresholds",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    gates = baseline["gates"]
    trace_meta = load(Path(baseline["trace"]["path"]))["meta"]

    failures = trace_identity(fresh, trace_meta)
    supervisor, evidence_problems = chaos_evidence(fresh, baseline)
    failures += evidence_problems

    results = fresh.get("results") or {}
    total = (fresh.get("meta") or {}).get("requests") or 0
    completed = results.get("completed", 0)
    rejected = results.get("rejected", 0)
    expired = results.get("deadline_expired", 0)
    failed = results.get("failed", 0)

    # Bit-exactness: surviving a crash by serving a wrong grid must fail.
    for key in ("failed", "mismatches", "skipped_verification"):
        if results.get(key):
            failures.append(f"{results[key]} {key.replace('_', ' ')}")

    # No hangs: every request resolved with a typed outcome.
    resolved = completed + rejected + expired + failed
    if resolved != total:
        failures.append(
            f"only {resolved} of {total} requests resolved with a typed "
            "outcome — something hung or vanished"
        )
    if completed < gates["min_completed"]:
        failures.append(
            f"only {completed} requests completed "
            f"(need >= {gates['min_completed']})"
        )
    if not gates["min_deadline_expired"] <= expired <= gates["max_deadline_expired"]:
        failures.append(
            f"{expired} deadline expiries outside the expected "
            f"[{gates['min_deadline_expired']}, {gates['max_deadline_expired']}] "
            "band (the drop fault guarantees some, a healthy server bounds them)"
        )

    if supervisor is not None:
        by_kind = (supervisor.get("faults") or {}).get("by_kind") or {}
        kills = by_kind.get("kill", 0)
        restarts = supervisor.get("restarts", 0)
        redispatches = supervisor.get("redispatches", 0)
        server_expired = ((fresh.get("server_metrics") or {}).get("requests") or {}).get(
            "deadline_expired", 0
        )
        print(
            f"chaos: {supervisor.get('faults_injected', 0)} faults injected "
            f"({kills} kills), {restarts} restarts, {redispatches} redispatches"
        )
        print(
            f"outcomes: {completed} completed, {expired} deadline-expired "
            f"(server counted {server_expired}), {rejected} rejected, "
            f"{failed} failed, {results.get('retries', 0)} retries"
        )
        if kills < gates["min_kills"]:
            failures.append(
                f"only {kills} shard kills injected (need >= {gates['min_kills']})"
            )
        if not gates["min_restarts"] <= restarts <= gates["max_restarts"]:
            failures.append(
                f"{restarts} shard restarts outside the budget band "
                f"[{gates['min_restarts']}, {gates['max_restarts']}] — the "
                "supervisor either never recovered or thrashed"
            )
        if redispatches < gates["min_kills"]:
            failures.append(
                f"only {redispatches} re-dispatches for {kills} kills — "
                "in-flight work of a crashed shard was abandoned"
            )
        if expired and not server_expired:
            failures.append(
                "clients saw deadline expiries the server never counted — "
                "misses are untyped somewhere on the path"
            )
        dead = [
            shard["index"]
            for shard in supervisor.get("shards", [])
            if shard.get("state") == "dead"
        ]
        if dead:
            failures.append(
                f"shard(s) {dead} ended the run dead — the restart budget "
                "was exhausted by the committed plan"
            )

    if failures:
        print("\nchaos check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\nchaos check OK: {completed}/{total} requests survived "
        f"{baseline['chaos']['plan']!r} bit-exactly; every miss was typed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
