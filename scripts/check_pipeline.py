#!/usr/bin/env python
"""Pipelined-dispatch regression gate for CI.

The dependency-driven pipelined scheduler exists to remove the per-wave
barrier of ``mp-parallel`` — it must never make things *slower*.  This
gate compares a freshly measured ``repro bench`` JSON against a committed
baseline and fails when, for any application, the pipelined executor's
best wall-clock exceeds the barriered (``mp-parallel``) executor's best
wall-clock by more than ``--threshold`` (default 1.05: pipelined may cost
at most 5% over barriered on the same host and run).  The ratio is
intra-run — both numbers come from the same bench invocation — so it is
machine-neutral by construction; the committed baseline documents the
expected ratios and guards against the bench grid silently losing one of
the two executors.

Also fails when any fresh result did not match the serial reference grid:
a pipelined schedule that reorders tile retirement incorrectly shows up
here as a correctness failure, not just a perf number.

Usage (CI):

    python -m repro bench --dim 96 --apps synthetic,lcs \
        --executors serial,mp-parallel,pipelined \
        --repeats 3 --workers 2 --out /tmp/pipeline_smoke.json
    python scripts/check_pipeline.py --fresh /tmp/pipeline_smoke.json \
        --baseline benchmarks/results/pipeline_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BARRIERED = "mp-parallel"
PIPELINED = "pipelined"


def load_ratios(path: Path) -> tuple[dict[str, float], list[str]]:
    """Map of application -> pipelined/barriered wall ratio, plus errors."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    records = payload["results"]
    walls: dict[tuple[str, str], float] = {}
    errors: list[str] = []
    for r in records:
        app, executor = r["application"], r["executor"]
        if r.get("matches_serial") is False:
            errors.append(f"{app}/{executor}: grid did not match the serial reference")
        walls[(app, executor)] = r["wall_s_best"]
    ratios: dict[str, float] = {}
    for (app, executor), wall in sorted(walls.items()):
        if executor != PIPELINED:
            continue
        barriered = walls.get((app, BARRIERED))
        if barriered is None:
            errors.append(f"{app}: no {BARRIERED} record to compare {PIPELINED} against")
        elif barriered <= 0:
            errors.append(f"{app}: non-positive {BARRIERED} wall {barriered!r}")
        else:
            ratios[app] = wall / barriered
    return ratios, errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True, help="bench JSON just measured")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/pipeline_baseline.json"),
        help="committed baseline bench JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.05,
        help="fail when pipelined wall exceeds barriered wall by this factor",
    )
    args = parser.parse_args()

    fresh, errors = load_ratios(args.fresh)
    baseline, baseline_errors = load_ratios(args.baseline)

    failures = list(errors)
    failures += [f"baseline: {error}" for error in baseline_errors]
    compared = 0
    for app, base_ratio in sorted(baseline.items()):
        if app not in fresh:
            failures.append(f"{app}: present in baseline but missing from fresh run")
            continue
        compared += 1
        ratio = fresh[app]
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{app:<20} {PIPELINED}/{BARRIERED} wall ratio: "
            f"baseline {base_ratio:5.3f}, fresh {ratio:5.3f}  "
            f"(threshold {args.threshold:.2f})  {status}"
        )
        if ratio > args.threshold:
            failures.append(
                f"{app}: pipelined is {ratio:.3f}x the barriered wall "
                f"(threshold {args.threshold:.2f}x)"
            )

    if compared == 0:
        failures.append("no applications with both pipelined and barriered records")
    if failures:
        print("\npipeline check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\npipeline check OK: {compared} applications, pipelined within "
        f"{args.threshold:.2f}x of barriered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
