#!/usr/bin/env python
"""Smoke-scale perf-regression gate for CI.

Compares a freshly measured ``repro bench`` JSON against a committed
baseline.  Absolute wall-clock times are useless across CI machines, so
each executor is normalised by the *serial* executor's time on the same
application in the same run; the gate fails only when that machine-neutral
ratio degrades by more than ``--threshold`` (generous by design — it exists
to catch gross, order-of-magnitude regressions, not noise):

    fresh_norm > threshold * baseline_norm   ->  FAIL

Also fails when any fresh result did not match the serial reference grid.

Usage (CI):

    python -m repro bench --dim 96 --apps synthetic,lcs \
        --executors serial,vectorized,cpu-parallel,mp-parallel \
        --out /tmp/perf_smoke.json
    python scripts/check_perf.py --fresh /tmp/perf_smoke.json \
        --baseline benchmarks/results/ci_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_normalised(path: Path) -> tuple[dict[tuple[str, str], float], list[str]]:
    """Map of (application, executor) -> time normalised by serial, plus errors."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    records = payload["results"]
    serial: dict[str, float] = {
        r["application"]: r["wall_s_best"]
        for r in records
        if r["executor"] == "serial"
    }
    normalised: dict[tuple[str, str], float] = {}
    errors: list[str] = []
    for r in records:
        app, executor = r["application"], r["executor"]
        if r.get("matches_serial") is False:
            errors.append(f"{app}/{executor}: grid did not match the serial reference")
        if app not in serial:
            continue
        normalised[(app, executor)] = r["wall_s_best"] / serial[app]
    return normalised, errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True, help="bench JSON just measured")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/results/ci_baseline.json"),
        help="committed baseline bench JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="fail when fresh normalised time exceeds baseline by this factor",
    )
    args = parser.parse_args()

    fresh, errors = load_normalised(args.fresh)
    baseline, _ = load_normalised(args.baseline)

    failures = list(errors)
    compared = 0
    for key, base_norm in sorted(baseline.items()):
        if key not in fresh or key[1] == "serial":
            continue
        compared += 1
        fresh_norm = fresh[key]
        ratio = fresh_norm / base_norm if base_norm > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{key[0]:<20} {key[1]:<14} baseline {base_norm:8.3f}x serial, "
            f"fresh {fresh_norm:8.3f}x serial  ({ratio:5.2f}x baseline)  {status}"
        )
        if ratio > args.threshold:
            failures.append(
                f"{key[0]}/{key[1]}: {ratio:.2f}x slower than baseline "
                f"(threshold {args.threshold:.1f}x)"
            )

    if compared == 0:
        failures.append("no overlapping (application, executor) pairs to compare")
    if failures:
        print("\nperf check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf check OK: {compared} pairs within {args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
